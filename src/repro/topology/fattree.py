"""FatTree(k) — Al-Fares et al. SIGCOMM'08 (paper's Fig. 11 left, Fig. 13).

A k-ary fat-tree has k pods; each pod holds k/2 edge and k/2 aggregation
switches; there are (k/2)^2 core switches; each edge switch serves k/2
hosts. With k = 8 this gives 128 hosts and 80 switches — exactly the
paper's "FatTree: 128 hosts, 80 switches, 100 Mbps 100 ms links".

Between hosts in different pods there are (k/2)^2 equal-cost paths (choose
the aggregation switch, then the core switch); within a pod there are k/2
(via aggregation) or 1 (same edge switch).
"""

from __future__ import annotations

from typing import List

from repro.errors import ConfigurationError
from repro.topology.base import DcTopology, PathSpec
from repro.units import mbps, ms


class FatTree(DcTopology):
    """k-ary fat-tree with uniform link capacity and delay."""

    def __init__(
        self,
        k: int = 8,
        *,
        link_bps: float = mbps(100),
        link_delay: float = ms(100),
    ):
        if k < 2 or k % 2 != 0:
            raise ConfigurationError(f"fat-tree arity k must be even and >= 2, got {k}")
        super().__init__()
        self.k = k
        self.link_bps = link_bps
        self.link_delay = link_delay
        half = k // 2

        self.core = [self.add_switch(f"core{i}") for i in range(half * half)]
        self.edge: List[List[str]] = []
        self.agg: List[List[str]] = []
        self._host_pod = {}
        self._host_edge = {}

        for pod in range(k):
            edges = [self.add_switch(f"p{pod}e{i}") for i in range(half)]
            aggs = [self.add_switch(f"p{pod}a{i}") for i in range(half)]
            self.edge.append(edges)
            self.agg.append(aggs)
            for e_i, edge_name in enumerate(edges):
                for h_i in range(half):
                    host = self.add_host(f"h{pod}_{e_i}_{h_i}")
                    self._host_pod[host] = pod
                    self._host_edge[host] = e_i
                    self.add_duplex_link(
                        host, edge_name, link_bps, link_delay, "host-sw", "sw-host"
                    )
                for agg_name in aggs:
                    self.add_duplex_link(
                        edge_name, agg_name, link_bps, link_delay, "sw-sw", "sw-sw"
                    )
            for a_i, agg_name in enumerate(aggs):
                # Aggregation switch i of every pod connects to core group i.
                for c_i in range(half):
                    core_name = self.core[a_i * half + c_i]
                    self.add_duplex_link(
                        agg_name, core_name, link_bps, link_delay, "sw-sw", "sw-sw"
                    )

    def paths(self, src_host: str, dst_host: str, max_paths: int) -> List[PathSpec]:
        if src_host == dst_host:
            raise ConfigurationError("src and dst must differ")
        half = self.k // 2
        sp, se = self._host_pod[src_host], self._host_edge[src_host]
        dp, de = self._host_pod[dst_host], self._host_edge[dst_host]
        out: List[PathSpec] = []
        if sp == dp and se == de:
            out.append(
                self.path_from_nodes([src_host, self.edge[sp][se], dst_host])
            )
            return out[:max_paths]
        if sp == dp:
            for a_i in range(half):
                out.append(
                    self.path_from_nodes(
                        [src_host, self.edge[sp][se], self.agg[sp][a_i],
                         self.edge[dp][de], dst_host]
                    )
                )
                if len(out) >= max_paths:
                    return out
            return out
        for a_i in range(half):
            for c_i in range(half):
                core_name = self.core[a_i * half + c_i]
                out.append(
                    self.path_from_nodes(
                        [src_host, self.edge[sp][se], self.agg[sp][a_i], core_name,
                         self.agg[dp][a_i], self.edge[dp][de], dst_host]
                    )
                )
                if len(out) >= max_paths:
                    return out
        return out


def fattree24(*, link_bps: float = mbps(100), link_delay: float = ms(1)) -> FatTree:
    """City-scale preset: FatTree(24) — 3456 hosts, 720 switches,
    20736 directed links, 144 equal-cost inter-pod paths per host pair.

    The default 1 ms link delay (vs. the paper-replica 100 ms of
    ``FatTree()``) keeps RTTs datacenter-like at this scale.
    """
    return FatTree(24, link_bps=link_bps, link_delay=link_delay)


def fattree32(*, link_bps: float = mbps(100), link_delay: float = ms(1)) -> FatTree:
    """City-scale preset: FatTree(32) — 8192 hosts, 1280 switches,
    49152 directed links, 256 equal-cost inter-pod paths per host pair."""
    return FatTree(32, link_bps=link_bps, link_delay=link_delay)
