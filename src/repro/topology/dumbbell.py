"""The paper's two testbed scenarios (Fig. 5) on the packet engine.

Scenario (a) — *increasing throughput*: N MPTCP users (two paths each) and
2N regular-TCP users (N per path) share two bottleneck links. This is the
resource-pooling stress test behind Fig. 6.

Scenario (b) — *shifting traffic*: one MPTCP connection over two paths, each
path intermittently degraded by Pareto-burst cross traffic so the four path
quality states (Good/Bad x Good/Bad) occur at random. Behind Figs. 7-9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.net.mptcp import MptcpConnection
from repro.net.network import Network
from repro.net.queues import DropTailQueue
from repro.net.routing import Route
from repro.units import mbps, ms
from repro.workloads.pareto_bursts import ParetoBurstSource


@dataclass
class SharedBottleneckScenario:
    """Realized Fig. 5(a) network plus its connections."""

    network: Network
    mptcp_connections: List[MptcpConnection]
    tcp_connections: List[MptcpConnection]
    bottleneck_routes: List[Route]

    def start_all(self, jitter: float = 0.05) -> None:
        """Start every connection, de-synchronized by a small random jitter
        so slow starts don't phase-lock."""
        rand = self.network.sim.rand
        for conn in self.mptcp_connections + self.tcp_connections:
            conn.start(at=rand.uniform(0.0, jitter))


def build_shared_bottleneck(
    *,
    n_mptcp: int,
    algorithm: str,
    transfer_bytes: int,
    n_tcp_per_path: Optional[int] = None,
    bottleneck_bps: float = mbps(100),
    bottleneck_delay: float = ms(10),
    access_delay: float = ms(1),
    queue_packets: int = 120,
    seed: Optional[int] = None,
) -> SharedBottleneckScenario:
    """Build the Fig. 5(a) scenario.

    The client and server are single machines with two NICs each (as in the
    paper's parallel-senders setup); access links are provisioned fat enough
    that only the two bottlenecks constrain the flows. TCP users default to
    ``n_mptcp`` per bottleneck (the paper's 2N total).
    """
    if n_mptcp <= 0:
        raise ConfigurationError(f"n_mptcp must be positive, got {n_mptcp}")
    n_tcp = n_tcp_per_path if n_tcp_per_path is not None else n_mptcp
    net = Network(seed=seed)
    client = net.add_host("client")
    server = net.add_host("server")
    left = [net.add_switch("L1"), net.add_switch("L2")]
    right = [net.add_switch("R1"), net.add_switch("R2")]
    # Fat access links: the bottlenecks must be the S->S hops.
    access_rate = bottleneck_bps * (n_mptcp + n_tcp) * 2
    for i in range(2):
        net.link(client, left[i], rate_bps=access_rate, delay=access_delay)
        net.link(
            left[i],
            right[i],
            rate_bps=bottleneck_bps,
            delay=bottleneck_delay,
            queue_factory=lambda: DropTailQueue(limit_packets=queue_packets),
        )
        net.link(right[i], server, rate_bps=access_rate, delay=access_delay)
    routes = [net.route([client, left[i], right[i], server]) for i in range(2)]

    mptcp_conns = [
        net.connection(
            routes, algorithm, total_bytes=transfer_bytes, name=f"mptcp{u}"
        )
        for u in range(n_mptcp)
    ]
    tcp_conns = []
    for path in range(2):
        for u in range(n_tcp):
            tcp_conns.append(
                net.tcp_connection(
                    routes[path], total_bytes=transfer_bytes, name=f"tcp{path}-{u}"
                )
            )
    return SharedBottleneckScenario(net, mptcp_conns, tcp_conns, routes)


@dataclass
class TrafficShiftingScenario:
    """Realized Fig. 5(b) network plus its MPTCP connection and bursts."""

    network: Network
    connection: MptcpConnection
    burst_sources: List[ParetoBurstSource]
    routes: List[Route]

    def start_all(self) -> None:
        """Start the MPTCP connection and both cross-traffic sources."""
        self.connection.start()
        for src in self.burst_sources:
            src.start()


def build_traffic_shifting(
    *,
    algorithm: str,
    transfer_bytes: Optional[int],
    path_bps: float = mbps(100),
    path_delay: float = ms(10),
    burst_rate_bps: float = mbps(45),
    mean_burst_interval: float = 10.0,
    mean_burst_duration: float = 5.0,
    queue_packets: int = 250,
    seed: Optional[int] = None,
) -> TrafficShiftingScenario:
    """Build the Fig. 5(b) scenario: two paths, each with random Pareto
    bursts (rate 45 Mbps, mean gap 10 s, mean duration 5 s) that create the
    four Good/Bad path-state combinations."""
    net = Network(seed=seed)
    client = net.add_host("client")
    server = net.add_host("server")
    burst_hosts = []
    routes = []
    sources: List[ParetoBurstSource] = []
    for i in range(2):
        sa = net.add_switch(f"S{i}a")
        sb = net.add_switch(f"S{i}b")
        net.link(client, sa, rate_bps=path_bps * 10, delay=ms(1))
        net.link(
            sa,
            sb,
            rate_bps=path_bps,
            delay=path_delay,
            queue_factory=lambda: DropTailQueue(limit_packets=queue_packets),
        )
        net.link(sb, server, rate_bps=path_bps * 10, delay=ms(1))
        routes.append(net.route([client, sa, sb, server]))
        # Cross-traffic endpoints sharing only the bottleneck.
        csrc = net.add_host(f"burst_src{i}")
        cdst = net.add_host(f"burst_dst{i}")
        burst_hosts.append((csrc, cdst))
        net.link(csrc, sa, rate_bps=path_bps * 10, delay=ms(1))
        net.link(sb, cdst, rate_bps=path_bps * 10, delay=ms(1))
        cross_route = net.route([csrc, sa, sb, cdst])
        sources.append(
            ParetoBurstSource(
                net.sim,
                cross_route,
                rate_bps=burst_rate_bps,
                mean_interval=mean_burst_interval,
                mean_duration=mean_burst_duration,
            )
        )
    conn = net.connection(routes, algorithm, total_bytes=transfer_bytes, name="mptcp")
    return TrafficShiftingScenario(net, conn, sources, routes)
