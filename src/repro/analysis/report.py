"""Plain-text report formatting for the benchmark harness.

The benches cannot draw the paper's figures in a terminal, so each emits
the figure's underlying rows/series as an aligned ASCII table; EXPERIMENTS.md
records these against the paper's reported shapes.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

Number = Union[int, float]


def _fmt(value, width: int) -> str:
    if isinstance(value, float):
        if value == 0 or 0.01 <= abs(value) < 1e6:
            return f"{value:>{width}.3f}"
        return f"{value:>{width}.3e}"
    return f"{value!s:>{width}}"


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Aligned ASCII table."""
    widths = [max(len(h), 12) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(_fmt(cell, 0).strip()))
    head = "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    sep = "  ".join("-" * w for w in widths)
    body = [
        "  ".join(_fmt(cell, w) for cell, w in zip(row, widths)) for row in rows
    ]
    return "\n".join([head, sep, *body])


def format_series(name: str, xs: Sequence[Number], ys: Sequence[Number]) -> str:
    """A one-series 'figure': x/y pairs as two columns."""
    return format_table([f"{name}.x", f"{name}.y"], list(zip(xs, ys)))


def format_grouped(
    group_key: str,
    series: Dict[str, Dict[Number, Number]],
) -> str:
    """Multiple named series sharing an x axis, one column per series."""
    xs = sorted({x for s in series.values() for x in s})
    headers = [group_key, *series.keys()]
    rows: List[List] = []
    for x in xs:
        rows.append([x, *[series[name].get(x, float("nan")) for name in series]])
    return format_table(headers, rows)
