"""Time-series utilities for trace figures (Fig. 8's LIA vs DTS traces)."""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError


def bin_series(
    times: Sequence[float],
    values: Sequence[float],
    bin_width: float,
) -> Tuple[List[float], List[float]]:
    """Average ``values`` into fixed-width time bins; returns (centres, means)."""
    if bin_width <= 0:
        raise ConfigurationError(f"bin_width must be positive, got {bin_width}")
    t = np.asarray(times, dtype=float)
    v = np.asarray(values, dtype=float)
    if t.shape != v.shape:
        raise ConfigurationError("times and values must align")
    if t.size == 0:
        return [], []
    edges = np.arange(t.min(), t.max() + bin_width, bin_width)
    idx = np.digitize(t, edges) - 1
    centres: List[float] = []
    means: List[float] = []
    for b in range(len(edges) - 1):
        mask = idx == b
        if np.any(mask):
            centres.append(float(edges[b] + bin_width / 2))
            means.append(float(np.mean(v[mask])))
    return centres, means


def moving_average(values: Sequence[float], window: int) -> List[float]:
    """Centered-start moving average (shorter warm-up windows included)."""
    if window <= 0:
        raise ConfigurationError(f"window must be positive, got {window}")
    v = np.asarray(values, dtype=float)
    out: List[float] = []
    csum = np.concatenate([[0.0], np.cumsum(v)])
    for i in range(len(v)):
        lo = max(0, i - window + 1)
        out.append(float((csum[i + 1] - csum[lo]) / (i + 1 - lo)))
    return out
