"""Result analysis: box-whisker stats, time series, reports, comparisons."""

from repro.analysis.compare import crossover_points, relative_saving
from repro.analysis.fairness import friendliness_ratio, jain_index, share_summary
from repro.analysis.report import format_series, format_table
from repro.analysis.stats import BoxStats, box_stats, summarize
from repro.analysis.timeseries import bin_series, moving_average

__all__ = [
    "BoxStats",
    "bin_series",
    "box_stats",
    "crossover_points",
    "format_series",
    "friendliness_ratio",
    "jain_index",
    "share_summary",
    "format_table",
    "moving_average",
    "relative_saving",
    "summarize",
]
