"""Box-whisker statistics matching the paper's Fig. 6 convention.

The paper plots "minimum, 25th percentile Q1, median, 75th percentile Q3,
and maximum, as well as the outliers out of the range between
Q1 - 1.5*(Q3-Q1) and Q3 + 1.5*(Q3-Q1)" — i.e. Tukey boxes. The whiskers
here are the most extreme samples *inside* the Tukey fences; anything
outside is an outlier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.errors import ConfigurationError


@dataclass
class BoxStats:
    """Five-number summary plus Tukey outliers."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    whisker_low: float
    whisker_high: float
    outliers: List[float]
    mean: float
    n: int

    @property
    def iqr(self) -> float:
        """Interquartile range Q3 - Q1."""
        return self.q3 - self.q1


def box_stats(samples: Sequence[float]) -> BoxStats:
    """Compute the paper's box-whisker summary for a sample set."""
    data = np.asarray(list(samples), dtype=float)
    if data.size == 0:
        raise ConfigurationError("box_stats needs at least one sample")
    q1, med, q3 = np.percentile(data, [25, 50, 75])
    iqr = q3 - q1
    low_fence = q1 - 1.5 * iqr
    high_fence = q3 + 1.5 * iqr
    inside = data[(data >= low_fence) & (data <= high_fence)]
    outliers = data[(data < low_fence) | (data > high_fence)]
    whisk_lo = float(np.min(inside)) if inside.size else float(np.min(data))
    whisk_hi = float(np.max(inside)) if inside.size else float(np.max(data))
    return BoxStats(
        minimum=float(np.min(data)),
        q1=float(q1),
        median=float(med),
        q3=float(q3),
        maximum=float(np.max(data)),
        whisker_low=whisk_lo,
        whisker_high=whisk_hi,
        outliers=[float(v) for v in np.sort(outliers)],
        mean=float(np.mean(data)),
        n=int(data.size),
    )


def summarize(samples: Sequence[float]) -> Dict[str, float]:
    """Flat dict summary (mean/median/std/min/max) for report tables."""
    data = np.asarray(list(samples), dtype=float)
    if data.size == 0:
        raise ConfigurationError("summarize needs at least one sample")
    return {
        "mean": float(np.mean(data)),
        "median": float(np.median(data)),
        "std": float(np.std(data)),
        "min": float(np.min(data)),
        "max": float(np.max(data)),
        "n": int(data.size),
    }
