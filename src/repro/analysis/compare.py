"""Comparison helpers: savings percentages and series crossovers."""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError


def relative_saving(baseline: float, candidate: float) -> float:
    """Fractional saving of ``candidate`` relative to ``baseline``.

    Positive means the candidate consumes less (e.g. 0.2 = 20% saving, the
    paper's headline DTS-vs-LIA number).
    """
    if baseline <= 0:
        raise ConfigurationError(f"baseline must be positive, got {baseline}")
    return (baseline - candidate) / baseline


def crossover_points(
    xs: Sequence[float], a: Sequence[float], b: Sequence[float]
) -> List[Tuple[float, float]]:
    """x positions where series ``a`` and ``b`` cross (linear interpolation).

    Returns (x, y) pairs; useful to check "where does MPTCP start beating
    TCP"-style claims.
    """
    if not (len(xs) == len(a) == len(b)):
        raise ConfigurationError("xs, a, b must have equal length")
    out: List[Tuple[float, float]] = []
    for i in range(1, len(xs)):
        d0 = a[i - 1] - b[i - 1]
        d1 = a[i] - b[i]
        if d0 == 0:
            out.append((xs[i - 1], a[i - 1]))
        elif d0 * d1 < 0:
            t = d0 / (d0 - d1)
            x = xs[i - 1] + t * (xs[i] - xs[i - 1])
            y = a[i - 1] + t * (a[i] - a[i - 1])
            out.append((x, y))
    return out
