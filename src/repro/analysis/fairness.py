"""Fairness metrics: Jain's index and bandwidth-share summaries.

TCP-friendliness — Condition 1 of the paper — is ultimately a fairness
statement; these metrics quantify it for simulation outcomes.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.errors import ConfigurationError


def jain_index(allocations: Sequence[float]) -> float:
    """Jain's fairness index: (sum x)^2 / (n * sum x^2), in (0, 1].

    1.0 means perfectly equal shares; 1/n means one flow holds everything.
    """
    x = np.asarray(list(allocations), dtype=float)
    if x.size == 0:
        raise ConfigurationError("jain_index needs at least one allocation")
    if np.any(x < 0):
        raise ConfigurationError("allocations must be non-negative")
    total = float(np.sum(x))
    if total == 0:
        return 1.0  # nobody got anything: vacuously fair
    return total * total / (len(x) * float(np.sum(x * x)))


def share_summary(allocations: Dict[str, float]) -> Dict[str, float]:
    """Per-name fraction of the total allocation."""
    total = sum(allocations.values())
    if total <= 0:
        raise ConfigurationError("total allocation must be positive")
    return {name: value / total for name, value in allocations.items()}


def friendliness_ratio(mptcp_bps: float, tcp_mean_bps: float) -> float:
    """MPTCP aggregate over the mean competing-TCP goodput.

    RFC 6356's goals bound this near the number of *bottlenecks* MPTCP
    spans (not the number of subflows); an uncoupled bundle of n subflows
    on one bottleneck drives it toward n.
    """
    if tcp_mean_bps <= 0:
        raise ConfigurationError("tcp goodput must be positive")
    return mptcp_bps / tcp_mean_bps
