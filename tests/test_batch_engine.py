"""Unit and edge-case tests for the batched packet engine itself:
cohort scheduling, compaction, scalar-fallback re-entry, scenario
validation, the campaign-executor integration, and the DES hooks."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.net.batch import (
    MAX_VECTOR_BURST,
    VECTOR_ALGORITHMS,
    BatchConnection,
    BatchEngine,
    BatchPath,
    BatchScenario,
    OracleEngine,
    ec2_scenario,
    run_scenario,
)
from repro.net.events import TickCohorts


def _single_path(**overrides):
    base = dict(base_rtt=0.004, rate_bps=32e6, loss_rate=0.0,
                queue_segments=16)
    base.update(overrides)
    return BatchPath(**base)


# --------------------------------------------------------- cohort scheduler


class TestTickCohorts:
    def test_pop_returns_sorted_keys_per_tick(self):
        cohorts = TickCohorts()
        cohorts.push(5, (2, 0))
        cohorts.push(3, (1, 1))
        cohorts.push(5, (0, 1))
        cohorts.push(5, (2, 1))
        assert cohorts.peek_tick() == 3
        assert cohorts.pop_cohort() == (3, [(1, 1)])
        assert cohorts.pop_cohort() == (5, [(0, 1), (2, 0), (2, 1)])
        assert cohorts.peek_tick() is None
        assert not cohorts

    def test_len_counts_scheduled_keys(self):
        cohorts = TickCohorts()
        assert len(cohorts) == 0
        cohorts.push(1, "a")
        cohorts.push(1, "b")
        cohorts.push(9, "c")
        assert len(cohorts) == 3
        cohorts.pop_cohort()
        assert len(cohorts) == 1

    def test_reuse_of_popped_tick(self):
        cohorts = TickCohorts()
        cohorts.push(2, "x")
        cohorts.pop_cohort()
        cohorts.push(2, "y")
        assert cohorts.pop_cohort() == (2, ["y"])


def test_single_connection_cohort():
    """A one-connection, one-subflow scenario: every cohort has exactly
    one member, and the engine still matches the oracle."""
    scenario = BatchScenario(
        connections=(BatchConnection(paths=(_single_path(),),
                                     algorithm="dts"),),
        duration=0.3, tick=1e-3, seed=11)
    oracle = OracleEngine(scenario, record=True).run()
    batch = BatchEngine(scenario, record=True).run()
    assert oracle.trajectory == batch.trajectory
    assert batch.counters["cohort_ticks"] == batch.counters["rounds"] \
        or batch.counters["cohort_ticks"] <= batch.counters["rounds"]
    assert batch.counters["vector_rounds"] > 0


def test_all_connections_lossy_step():
    """loss_rate=1.0 makes every round of every connection lossy: the
    whole batch runs through the scalar fallback, timeouts fire and
    back off, and the engines stay identical."""
    conn = BatchConnection(paths=(_single_path(loss_rate=0.99),),
                           algorithm="dts")
    scenario = BatchScenario(connections=(conn,) * 5, duration=0.5,
                             tick=1e-3, seed=2)
    oracle = OracleEngine(scenario, record=True).run()
    batch = BatchEngine(scenario, record=True).run()
    assert oracle.trajectory == batch.trajectory
    assert batch.counters["vector_rounds"] == 0
    assert batch.counters["fallback_rounds"] == batch.counters["rounds"]
    state = batch.final_state()
    assert any(rec[9] > 1.0 for rec in state.values()), \
        "expected RTO backoff growth under total loss"


def test_midrun_completion_shrinks_arrays():
    """Finite transfers that complete mid-run trigger compaction: their
    rows are archived and the live arrays shrink, without disturbing the
    surviving connections' trajectories or results."""
    quick = BatchConnection(paths=(_single_path(),), algorithm="dts",
                            total_segments=40)
    slow = BatchConnection(paths=(_single_path(base_rtt=0.008),),
                           algorithm="lia")
    scenario = BatchScenario(connections=(quick, quick, quick, slow),
                             duration=0.6, tick=1e-3, seed=4)
    oracle = OracleEngine(scenario, record=True).run()
    batch = BatchEngine(scenario, record=True,
                        compact_min_rows=1, compact_fraction=0.0).run()
    assert batch.counters["compactions"] > 0
    assert oracle.trajectory == batch.trajectory
    assert oracle.final_state() == batch.final_state()
    result = batch.result()
    assert result["totals"]["completed"] == 3
    # Archived (completed) connections still appear in gid order.
    assert [c["id"] for c in result["connections"]] == [0, 1, 2, 3]


def test_scalar_fallback_reentry():
    """A connection that takes the fallback path (lossy round) must
    re-enter the vector path on its next clean round: both counters
    advance for the same connection."""
    conn = BatchConnection(paths=(_single_path(loss_rate=0.05),),
                           algorithm="dts")
    scenario = BatchScenario(connections=(conn,), duration=1.0,
                             tick=1e-3, seed=8)
    batch = BatchEngine(scenario, record=True).run()
    assert batch.counters["vector_rounds"] > 0
    assert batch.counters["fallback_rounds"] > 0
    # Vector rounds happen after fallback rounds: find a lossy round
    # followed by a later round for the same (single) connection.
    oracle = OracleEngine(scenario, record=True).run()
    assert oracle.trajectory == batch.trajectory


def test_oversize_burst_uses_fallback():
    """Bursts above MAX_VECTOR_BURST stay on the scalar path even when
    clean, by contract."""
    path = _single_path(rate_bps=10e9, base_rtt=0.02, queue_segments=10_000)
    conn = BatchConnection(paths=(path,), algorithm="dts",
                           initial_cwnd=float(MAX_VECTOR_BURST + 100),
                           rwnd_segments=float(MAX_VECTOR_BURST + 100))
    scenario = BatchScenario(connections=(conn,), duration=0.2,
                             tick=1e-3, seed=1)
    batch = BatchEngine(scenario).run()
    oracle = OracleEngine(scenario).run()
    assert batch.counters["fallback_rounds"] > 0
    assert batch.final_state() == oracle.final_state()


# ------------------------------------------------------ scenario validation


class TestScenarioValidation:
    def test_rejects_unknown_algorithm(self):
        with pytest.raises(Exception):
            BatchConnection(paths=(_single_path(),), algorithm="nope")

    def test_rejects_empty_paths(self):
        with pytest.raises(ConfigurationError):
            BatchConnection(paths=())

    def test_rejects_bad_path(self):
        with pytest.raises(ConfigurationError):
            BatchPath(base_rtt=-1.0)
        with pytest.raises(ConfigurationError):
            BatchPath(loss_rate=1.5)

    def test_rejects_empty_scenario(self):
        with pytest.raises(ConfigurationError):
            BatchScenario(connections=())

    def test_ec2_scenario_shape(self):
        scenario = ec2_scenario(n_hosts=7, n_subflows=3, algorithm="lia")
        assert scenario.n_connections == 7
        assert scenario.max_subflows == 3
        assert all(c.algorithm == "lia" for c in scenario.connections)
        with pytest.raises(ConfigurationError):
            ec2_scenario(n_hosts=0)

    def test_run_scenario_dispatch(self):
        scenario = ec2_scenario(n_hosts=2, n_subflows=1, duration=0.1)
        a = run_scenario(scenario, engine="batch")
        b = run_scenario(scenario, engine="oracle")
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
        with pytest.raises(ConfigurationError):
            run_scenario(scenario, engine="warp")

    def test_vector_algorithms_constant(self):
        assert set(VECTOR_ALGORITHMS) == {"dts", "lia"}


# ------------------------------------------------------ campaign integration


def test_campaign_executor_packet_engines_byte_equal():
    """execute_run for packet-batch and packet-oracle on the same point
    (bar the engine name) returns byte-identical metrics sections —
    the claim the CI batch-equivalence-smoke job gates on."""
    from repro.campaign.executor import execute_run
    from repro.campaign.spec import RunSpec

    base = dict(algorithm="dts", topology="ec2", n_subflows=2, seed=5,
                duration=0.2, dt=2e-3, params={"n_hosts": 4,
                                               "loss_rate": 0.01})
    batch = execute_run(RunSpec(engine="packet-batch", **base))
    oracle = execute_run(RunSpec(engine="packet-oracle", **base))
    assert (json.dumps(batch["metrics"], sort_keys=True)
            == json.dumps(oracle["metrics"], sort_keys=True))
    # Engine-private counters live in obs, not metrics.
    assert "engine.vector_rounds" in batch["obs"]
    assert "engine.vector_rounds" not in oracle["obs"]


def test_runspec_engine_topology_validation():
    from repro.campaign.spec import RunSpec

    with pytest.raises(ConfigurationError):
        RunSpec(engine="fluid", topology="ec2")
    with pytest.raises(ConfigurationError):
        RunSpec(engine="packet-batch", topology="bcube")
    spec = RunSpec(engine="packet-batch", topology="ec2")
    assert spec.content_hash() != spec.replace(engine="packet-oracle").content_hash()


def test_ec2_sweep_campaign_builder():
    from repro.campaign.spec import ec2_sweep_campaign

    campaign = ec2_sweep_campaign(subflow_counts=(1, 2), seeds=(1,),
                                  n_hosts=8, engine="packet-batch")
    assert len(campaign.runs) == 2
    assert all(r.topology == "ec2" for r in campaign.runs)
    assert all(r.params["n_hosts"] == 8 for r in campaign.runs)


# ----------------------------------------------------------------- DES hooks


def _toy_des_connection():
    from repro.algorithms import create_controller
    from repro.net import Host, Link, MptcpConnection, Route, Simulator, Switch

    sim = Simulator()
    h1, h2, sw = Host("h1"), Host("h2"), Switch("s1")
    fwd = [Link(sim, h1, sw, 64e6, 0.0005, loss_rate=0.001),
           Link(sim, sw, h2, 64e6, 0.0005)]
    rev = [Link(sim, h2, sw, 64e6, 0.0005),
           Link(sim, sw, h1, 64e6, 0.0005)]
    route = Route(fwd, rev)
    return MptcpConnection(sim, [route, route], create_controller("dts"),
                           total_bytes=10**6)


def test_tcp_sender_batch_snapshot():
    from repro.net.batch.model import MIRRORED_SENDER_FIELDS

    conn = _toy_des_connection()
    snap = conn.subflows[0].batch_snapshot()
    assert set(snap) == set(MIRRORED_SENDER_FIELDS)
    assert snap["cwnd"] == conn.subflows[0].cwnd


def test_mptcp_batch_spec_projects_connection():
    conn = _toy_des_connection()
    spec = conn.batch_spec()
    assert spec.algorithm == "dts"
    assert spec.n_subflows == 2
    assert spec.total_segments == conn.supply.total
    path = spec.paths[0]
    assert path.base_rtt == pytest.approx(0.002)
    assert path.rate_bps == 64e6
    assert 0.0 < path.loss_rate < 0.01
    # The projection is actually runnable.
    scenario = BatchScenario(connections=(spec,), duration=0.2,
                             tick=1e-3, seed=0)
    result = BatchEngine(scenario).run().result()
    assert result["totals"]["acked_segments"] > 0


# ------------------------------------------------------------------ speedup


def test_batch_speedup_over_oracle():
    """At a few hundred connections the struct-of-arrays engine must
    beat the scalar oracle by a wide margin (the megascale bench gates
    >=5x at 1000 hosts; this in-suite check uses a smaller scale and a
    conservative 2x bar to stay fast and noise-proof)."""
    import time

    scenario = ec2_scenario(n_hosts=300, n_subflows=2, algorithm="dts",
                            duration=0.1, queue_segments=64, seed=3)
    t0 = time.perf_counter()
    batch = BatchEngine(scenario).run()
    batch_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    oracle = OracleEngine(scenario).run()
    oracle_s = time.perf_counter() - t0
    assert (json.dumps(batch.result(), sort_keys=True)
            == json.dumps(oracle.result(), sort_keys=True))
    assert oracle_s > 2.0 * batch_s, (
        f"batch {batch_s:.3f}s vs oracle {oracle_s:.3f}s")
