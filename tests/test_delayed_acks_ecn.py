"""Delayed-ACK and end-to-end ECN/DCTCP behaviour tests."""

import pytest

from repro.net.network import Network
from repro.net.queues import DropTailQueue, EcnConfig
from repro.units import mbps, mib, ms


def single_path(seed=1, *, ecn_threshold=None, queue=100, delay=ms(10)):
    net = Network(seed=seed)
    a, b = net.add_host("a"), net.add_host("b")
    s = net.add_switch("s")
    ecn = EcnConfig(threshold=ecn_threshold) if ecn_threshold else None
    qf = lambda: DropTailQueue(limit_packets=queue, ecn=ecn)
    net.link(a, s, rate_bps=mbps(100), delay=delay / 2, queue_factory=qf)
    net.link(s, b, rate_bps=mbps(100), delay=delay / 2, queue_factory=qf)
    return net, net.route([a, s, b])


class TestDelayedAcks:
    def test_transfer_completes_with_delayed_acks(self):
        net, route = single_path()
        conn = net.tcp_connection(route, total_bytes=mib(2), delayed_acks=True)
        conn.start()
        net.run_until_complete([conn], timeout=60)
        assert conn.completed

    def test_fewer_acks_sent(self):
        net1, route1 = single_path()
        c1 = net1.tcp_connection(route1, total_bytes=mib(1))
        c1.start()
        net1.run_until_complete([c1], timeout=60)

        net2, route2 = single_path()
        c2 = net2.tcp_connection(route2, total_bytes=mib(1), delayed_acks=True)
        c2.start()
        net2.run_until_complete([c2], timeout=60)

        assert c2.subflows[0].receiver.acks_sent < 0.75 * c1.subflows[0].receiver.acks_sent

    def test_goodput_unharmed(self):
        net1, route1 = single_path()
        c1 = net1.tcp_connection(route1, total_bytes=mib(4))
        c1.start()
        net1.run_until_complete([c1], timeout=60)

        net2, route2 = single_path()
        c2 = net2.tcp_connection(route2, total_bytes=mib(4), delayed_acks=True)
        c2.start()
        net2.run_until_complete([c2], timeout=60)
        assert c2.aggregate_goodput_bps() > 0.7 * c1.aggregate_goodput_bps()

    def test_out_of_order_acked_immediately(self):
        # With loss, recovery still works under delayed ACKs (dup-ACKs are
        # never delayed).
        net, route = single_path(seed=3, queue=15)
        conn = net.tcp_connection(route, total_bytes=mib(2), delayed_acks=True)
        conn.start()
        net.run_until_complete([conn], timeout=120)
        assert conn.completed
        assert conn.subflows[0].fast_retransmits > 0


class TestDctcpEndToEnd:
    def test_dctcp_marks_and_cuts(self):
        net, route = single_path(ecn_threshold=20, queue=200)
        conn = net.tcp_connection(route, total_bytes=mib(8), algorithm="dctcp")
        conn.start()
        net.run_until_complete([conn], timeout=60)
        marks = sum(l.queue.marks for l in net.links if hasattr(l.queue, "marks"))
        assert conn.completed
        assert marks > 0

    def test_dctcp_keeps_queue_shorter_than_reno(self):
        def peak_queue(algorithm):
            net, route = single_path(ecn_threshold=20, queue=400, delay=ms(4))
            conn = net.tcp_connection(route, total_bytes=None, algorithm=algorithm)
            from repro.net.monitor import LinkMonitor

            mon = LinkMonitor(net.sim, net.links, interval=0.05)
            conn.start()
            net.run(until=10.0)
            return max(max(series) for series in mon.occupancy)

        assert peak_queue("dctcp") < peak_queue("reno")

    def test_reno_ignores_marks(self):
        net, route = single_path(ecn_threshold=20, queue=200)
        conn = net.tcp_connection(route, total_bytes=mib(2), algorithm="reno")
        conn.start()
        net.run_until_complete([conn], timeout=60)
        # Reno flows are not ECN-capable: queues never mark them.
        marks = sum(l.queue.marks for l in net.links if hasattr(l.queue, "marks"))
        assert marks == 0
