"""Equilibrium-solver tests."""

import numpy as np
import pytest

from repro.core import decomposition, reno_window, solve_equilibrium
from repro.errors import EquilibriumError, ModelError


class TestRenoWindow:
    def test_closed_form(self):
        assert reno_window(0.02) == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(EquilibriumError):
            reno_window(0.0)


class TestSolveEquilibrium:
    @pytest.mark.parametrize(
        "name", ["lia", "olia", "balia", "ecmtcp", "ewtcp", "coupled"]
    )
    def test_single_path_equals_reno(self, name):
        sol = solve_equilibrium(
            decomposition(name), rtt=np.array([0.05]), loss=np.array([0.01])
        )
        assert sol.w[0] == pytest.approx(reno_window(0.01), rel=0.01)

    def test_lia_two_equal_paths_total_equals_one_reno(self):
        sol = solve_equilibrium(
            decomposition("lia"), rtt=np.array([0.05, 0.05]),
            loss=np.array([0.01, 0.01]),
        )
        assert float(np.sum(sol.w)) == pytest.approx(reno_window(0.01), rel=0.02)

    def test_ewtcp_two_equal_paths_total_exceeds_reno(self):
        sol = solve_equilibrium(
            decomposition("ewtcp"), rtt=np.array([0.05, 0.05]),
            loss=np.array([0.01, 0.01]),
        )
        assert float(np.sum(sol.w)) > reno_window(0.01) * 1.3

    def test_lower_loss_path_gets_more_window(self):
        sol = solve_equilibrium(
            decomposition("balia"), rtt=np.array([0.05, 0.05]),
            loss=np.array([0.005, 0.02]),
        )
        assert sol.w[0] > sol.w[1]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(EquilibriumError):
            solve_equilibrium(
                decomposition("lia"), rtt=np.array([0.05]),
                loss=np.array([0.01, 0.01]),
            )

    def test_empty_inputs_rejected(self):
        with pytest.raises(EquilibriumError):
            solve_equilibrium(
                decomposition("lia"), rtt=np.array([]), loss=np.array([])
            )

    def test_nonpositive_loss_rejected(self):
        with pytest.raises(EquilibriumError):
            solve_equilibrium(
                decomposition("lia"), rtt=np.array([0.05]), loss=np.array([0.0])
            )

    def test_nonpositive_rtt_rejected(self):
        with pytest.raises(EquilibriumError):
            solve_equilibrium(
                decomposition("lia"), rtt=np.array([0.0]), loss=np.array([0.01])
            )

    def test_typed_error_is_a_model_error(self):
        # EquilibriumError subclasses ModelError so pre-existing handlers
        # keep working.
        with pytest.raises(ModelError):
            solve_equilibrium(
                decomposition("lia"), rtt=np.array([0.05]), loss=np.array([0.0])
            )

    def test_solution_reports_convergence_diagnostics(self):
        sol = solve_equilibrium(
            decomposition("lia"), rtt=np.array([0.05, 0.05]),
            loss=np.array([0.01, 0.01]),
        )
        assert sol.converged
        assert 0 < sol.iterations <= 200
        assert 0.0 <= sol.residual_norm <= 1e-4

    def test_passthroughs_match_state(self):
        sol = solve_equilibrium(
            decomposition("olia"), rtt=np.array([0.05, 0.07]),
            loss=np.array([0.01, 0.02]),
        )
        np.testing.assert_array_equal(sol.w, sol.state.w)
        np.testing.assert_array_equal(sol.x, sol.state.x)
        assert sol.total_rate == sol.state.total_rate

    def test_residual_small_at_solution(self):
        model = decomposition("balia")
        rtt = np.array([0.04, 0.07])
        loss = np.array([0.008, 0.015])
        sol = solve_equilibrium(model, rtt, loss)
        st = sol.state
        total = st.total_rate
        lhs = model.psi(st) / (rtt**2 * total**2)
        rhs = model.beta(st) * loss
        assert np.max(np.abs(lhs - rhs) / rhs) < 0.05
