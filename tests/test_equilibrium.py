"""Equilibrium-solver tests."""

import numpy as np
import pytest

from repro.core import decomposition, reno_window, solve_equilibrium
from repro.errors import ModelError


class TestRenoWindow:
    def test_closed_form(self):
        assert reno_window(0.02) == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ModelError):
            reno_window(0.0)


class TestSolveEquilibrium:
    @pytest.mark.parametrize(
        "name", ["lia", "olia", "balia", "ecmtcp", "ewtcp", "coupled"]
    )
    def test_single_path_equals_reno(self, name):
        st = solve_equilibrium(
            decomposition(name), rtt=np.array([0.05]), loss=np.array([0.01])
        )
        assert st.w[0] == pytest.approx(reno_window(0.01), rel=0.01)

    def test_lia_two_equal_paths_total_equals_one_reno(self):
        st = solve_equilibrium(
            decomposition("lia"), rtt=np.array([0.05, 0.05]),
            loss=np.array([0.01, 0.01]),
        )
        assert float(np.sum(st.w)) == pytest.approx(reno_window(0.01), rel=0.02)

    def test_ewtcp_two_equal_paths_total_exceeds_reno(self):
        st = solve_equilibrium(
            decomposition("ewtcp"), rtt=np.array([0.05, 0.05]),
            loss=np.array([0.01, 0.01]),
        )
        assert float(np.sum(st.w)) > reno_window(0.01) * 1.3

    def test_lower_loss_path_gets_more_window(self):
        st = solve_equilibrium(
            decomposition("balia"), rtt=np.array([0.05, 0.05]),
            loss=np.array([0.005, 0.02]),
        )
        assert st.w[0] > st.w[1]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ModelError):
            solve_equilibrium(
                decomposition("lia"), rtt=np.array([0.05]),
                loss=np.array([0.01, 0.01]),
            )

    def test_nonpositive_loss_rejected(self):
        with pytest.raises(ModelError):
            solve_equilibrium(
                decomposition("lia"), rtt=np.array([0.05]), loss=np.array([0.0])
            )

    def test_residual_small_at_solution(self):
        model = decomposition("balia")
        rtt = np.array([0.04, 0.07])
        loss = np.array([0.008, 0.015])
        st = solve_equilibrium(model, rtt, loss)
        total = st.total_rate
        lhs = model.psi(st) / (rtt**2 * total**2)
        rhs = model.beta(st) * loss
        assert np.max(np.abs(lhs - rhs) / rhs) < 0.05
