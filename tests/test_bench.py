"""Tests for `repro.bench`: registry/runner, results schema, the
regression comparator, profiling, and the CLI."""

import json
import re
import time

import pytest

from repro.bench import (
    SamplingProfiler,
    capture_cprofile,
    compare_documents,
    parse_collapsed,
    render_comparison,
    run_suite,
)
from repro.bench import results
from repro.bench import runner as bench_runner

# ------------------------------------------------------------------ fixtures


@pytest.fixture
def fresh_registry(monkeypatch):
    """An empty case registry (the built-in cases stay untouched)."""
    monkeypatch.setattr(bench_runner, "_REGISTRY", {})
    monkeypatch.setattr(bench_runner, "_discovered", True)
    return bench_runner


def make_doc(case_samples, suite="tier1", **case_extra):
    """A schema-valid document from {name: [samples]} without running."""
    cases = {}
    for name, samples in case_samples.items():
        doc = {"samples_s": list(samples), "metrics": {}}
        doc.update(results.case_stats(samples))
        doc.update(case_extra)
        cases[name] = doc
    return results.build_document(
        suite=suite,
        config={"repeats": len(next(iter(case_samples.values()))),
                "warmup": 0, "seed": 1},
        manifest={"label": f"bench:{suite}"},
        cases=cases,
    )


# ----------------------------------------------------------------- registry


def test_register_and_select(fresh_registry):
    @fresh_registry.register("t.a", suites=("s1",))
    def _a(ctx):
        pass

    @fresh_registry.register("t.b", suites=("s1", "s2"), description="bee")
    def _b(ctx):
        pass

    assert [c.name for c in fresh_registry.all_cases()] == ["t.a", "t.b"]
    assert fresh_registry.suite_names() == ["s1", "s2"]
    assert [c.name for c in fresh_registry.select_cases("s2")] == ["t.b"]
    assert [c.name for c in fresh_registry.select_cases("s1", [".a"])] \
        == ["t.a"]


def test_duplicate_registration_rejected(fresh_registry):
    @fresh_registry.register("t.dup")
    def _a(ctx):
        pass

    with pytest.raises(ValueError, match="already registered"):
        @fresh_registry.register("t.dup")
        def _b(ctx):
            pass


def test_builtin_cases_cover_engine_campaign_obs():
    from repro.bench import all_cases

    names = {c.name for c in all_cases()}
    assert {"engine.packet_transfer", "engine.fluid_fattree",
            "campaign.cold_sweep", "campaign.cached_replay",
            "obs.null_span"} <= names
    tier1 = {c.name for c in all_cases() if "tier1" in c.suites}
    assert len(tier1) >= 8


# ------------------------------------------------------------------- runner


def test_run_suite_shape_and_order(fresh_registry):
    seen = []

    @fresh_registry.register("t.case", suites=("tsuite",))
    def _case(ctx):
        seen.append((ctx.repeat, ctx.seed))
        assert ctx.tmp_path.is_dir()
        (ctx.tmp_path / "scratch").write_text("x")

    doc = fresh_registry.run_suite("tsuite", repeats=3, warmup=1, seed=7)
    # Warmup repeats are negative, timed ones 0-based.
    assert seen == [(-1, 7), (0, 7), (1, 7), (2, 7)]
    case = doc["cases"]["t.case"]
    assert len(case["samples_s"]) == 3
    assert case["median_s"] >= 0
    assert doc["config"] == {"repeats": 3, "warmup": 1, "seed": 7,
                             "profile": False}
    assert doc["manifest"]["seed"] == 7
    assert doc["manifest"]["spec_hash"]
    assert doc["manifest"]["cpu_count"] >= 1
    results.validate(doc)
    json.dumps(doc)  # fully serializable


def test_run_suite_setup_untimed_and_session_metrics(fresh_registry):
    order = []

    def setup(ctx):
        order.append("setup")
        time.sleep(0.05)
        (ctx.tmp_path / "warm").write_text("x")

    @fresh_registry.register("t.with_setup", suites=("tsuite",), setup=setup)
    def _case(ctx):
        order.append("fn")
        assert (ctx.tmp_path / "warm").exists()
        import repro.obs as obs
        obs.active_session().registry.counter("t.hits").inc(3)

    doc = fresh_registry.run_suite("tsuite", repeats=1, warmup=0)
    assert order == ["setup", "fn"]
    case = doc["cases"]["t.with_setup"]
    # The 50 ms setup must not leak into the timed sample.
    assert case["median_s"] < 0.05
    assert case["metrics"]["t.hits"] == 3


def test_run_suite_manages_session_case(fresh_registry):
    @fresh_registry.register("t.own_session", suites=("tsuite",),
                             manages_session=True)
    def _case(ctx):
        import repro.obs as obs
        with obs.session():  # would raise if the runner nested one
            pass

    doc = fresh_registry.run_suite("tsuite", repeats=2, warmup=0)
    assert doc["cases"]["t.own_session"]["metrics"] == {}


def test_run_suite_rejects_bad_args(fresh_registry):
    @fresh_registry.register("t.x", suites=("tsuite",))
    def _case(ctx):
        pass

    with pytest.raises(ValueError, match="repeats"):
        fresh_registry.run_suite("tsuite", repeats=0)
    with pytest.raises(ValueError, match="no bench cases"):
        fresh_registry.run_suite("nosuch")


# ------------------------------------------------------------------ results


def test_median_and_mad():
    assert results.median([3.0, 1.0, 2.0]) == 2.0
    assert results.median([1.0, 2.0, 3.0, 4.0]) == 2.5
    assert results.mad([1.0, 1.0, 1.0]) == 0.0
    assert results.mad([1.0, 2.0, 9.0]) == 1.0
    with pytest.raises(ValueError):
        results.median([])


def test_validate_rejects_malformed():
    good = make_doc({"a": [1.0, 2.0]})
    results.validate(good)
    with pytest.raises(ValueError, match="schema"):
        results.validate({"schema": "other/1"})
    bad = json.loads(json.dumps(good))
    del bad["cases"]["a"]["median_s"]
    with pytest.raises(ValueError, match="median_s"):
        results.validate(bad)
    bad2 = json.loads(json.dumps(good))
    bad2["cases"]["a"]["samples_s"] = []
    with pytest.raises(ValueError, match="samples_s"):
        results.validate(bad2)


def test_write_load_round_trip(tmp_path):
    doc = make_doc({"a": [1.0, 2.0, 3.0]})
    path = results.write(doc, tmp_path / "BENCH_x.json")
    assert results.load(path) == doc
    (tmp_path / "junk.json").write_text("{not json")
    with pytest.raises(ValueError, match="not JSON"):
        results.load(tmp_path / "junk.json")


# --------------------------------------------------------------- comparator


def test_compare_identical_passes():
    doc = make_doc({"a": [1.0, 1.1, 0.9], "b": [2.0, 2.0, 2.0]})
    comparison = compare_documents(doc, doc)
    assert comparison.ok and comparison.exit_code == 0
    assert {c.status for c in comparison.cases} == {"ok"}


def test_compare_flags_artificial_slowdown():
    base = make_doc({"a": [1.0, 1.0, 1.0]})
    slowed = make_doc({"a": [1.5, 1.5, 1.5]})  # 50% > 10% tolerance
    comparison = compare_documents(slowed, base, tolerance=0.10)
    (case,) = comparison.cases
    assert case.status == "regression"
    assert comparison.exit_code == 1
    assert case.ratio == pytest.approx(1.5)


def test_compare_zero_variance_uses_pure_relative_threshold():
    base = make_doc({"a": [1.0, 1.0, 1.0]})  # MAD = 0
    barely_over = make_doc({"a": [1.1001, 1.1001, 1.1001]})
    within = make_doc({"a": [1.0999, 1.0999, 1.0999]})
    assert compare_documents(barely_over, base).exit_code == 1
    assert compare_documents(within, base).exit_code == 0


def test_compare_tolerance_boundary_exactly_met_passes():
    # threshold = 1.0 * (1 + 0.10) + 3 * 0 = 1.10; landing exactly on it
    # is a pass — the gate is strict-greater-than by contract.
    base = make_doc({"a": [1.0, 1.0, 1.0]})
    at_boundary = make_doc({"a": [1.1, 1.1, 1.1]})
    comparison = compare_documents(at_boundary, base, tolerance=0.10)
    (case,) = comparison.cases
    assert case.status == "ok"
    assert case.threshold_s == pytest.approx(1.1)
    assert comparison.exit_code == 0


def test_compare_mad_widens_threshold():
    base = make_doc({"a": [1.0, 1.2, 0.8]})  # median 1.0, MAD 0.2
    cur = make_doc({"a": [1.5, 1.5, 1.5]})
    # threshold = 1.0*1.1 + 3*0.2 = 1.7 > 1.5 -> noisy baseline absorbs it
    assert compare_documents(cur, base, tolerance=0.10).exit_code == 0
    # with mad_k=0 the same slowdown trips the gate
    assert compare_documents(cur, base, tolerance=0.10,
                             mad_k=0.0).exit_code == 1


def test_compare_new_case_is_informational():
    base = make_doc({"a": [1.0]})
    cur = make_doc({"a": [1.0], "b": [5.0]})
    comparison = compare_documents(cur, base)
    statuses = {c.name: c.status for c in comparison.cases}
    assert statuses == {"a": "ok", "b": "new"}
    assert comparison.exit_code == 0


def test_compare_missing_case_fails_unless_allowed():
    base = make_doc({"a": [1.0], "b": [1.0]})
    cur = make_doc({"a": [1.0]})
    comparison = compare_documents(cur, base)
    statuses = {c.name: c.status for c in comparison.cases}
    assert statuses == {"a": "ok", "b": "missing"}
    assert comparison.exit_code == 1
    assert compare_documents(cur, base, allow_missing=True).exit_code == 0


def test_compare_renamed_case_cannot_slip_through():
    base = make_doc({"old_name": [1.0]})
    cur = make_doc({"new_name": [1.0]})
    comparison = compare_documents(cur, base)
    statuses = {c.name: c.status for c in comparison.cases}
    assert statuses == {"new_name": "new", "old_name": "missing"}
    assert comparison.exit_code == 1


def test_compare_improvement_reported_not_gated():
    base = make_doc({"a": [2.0, 2.0, 2.0]})
    cur = make_doc({"a": [1.0, 1.0, 1.0]})
    comparison = compare_documents(cur, base)
    (case,) = comparison.cases
    assert case.status == "improvement"
    assert comparison.exit_code == 0


def test_comparison_to_dict_is_the_ci_contract():
    from repro.bench import comparison_to_dict

    base = make_doc({"a": [1.0, 1.0, 1.0], "gone": [1.0]})
    cur = make_doc({"a": [2.0, 2.0, 2.0], "b": [1.0]})
    verdict = comparison_to_dict(compare_documents(cur, base))
    assert verdict["ok"] is False and verdict["exit_code"] == 1
    assert verdict["counts"] == {"cases": 3, "regressions": 1,
                                 "improvements": 0, "missing": 1, "new": 1}
    assert verdict["cases"]["a"]["status"] == "regression"
    assert verdict["cases"]["a"]["ratio"] == pytest.approx(2.0)
    assert verdict["cases"]["b"]["status"] == "new"
    assert verdict["cases"]["gone"]["status"] == "missing"
    # The contract document must be pure JSON.
    json.loads(json.dumps(verdict))


def test_render_comparison_mentions_verdict():
    base = make_doc({"a": [1.0]})
    out = render_comparison(compare_documents(base, base))
    assert "PASS" in out and "a" in out
    slowed = make_doc({"a": [9.0]})
    out = render_comparison(compare_documents(slowed, base))
    assert "FAIL" in out and "regression" in out


# ---------------------------------------------------------------- profiling


def _busy(deadline_s=0.08):
    t0 = time.perf_counter()
    total = 0
    while time.perf_counter() - t0 < deadline_s:
        total += sum(range(500))
    return total


def test_sampling_profiler_collects_and_exports(tmp_path):
    prof = SamplingProfiler(interval=0.001)
    prof.profile(_busy)
    assert prof.samples > 5
    top = prof.top_frames(5)
    assert top and top[0]["self_samples"] > 0
    assert any("_busy" in f["frame"] for f in top)

    path = prof.write_collapsed(tmp_path / "busy.collapsed.txt")
    text = path.read_text()
    # flamegraph.pl line shape: frame(;frame)* space count
    line_re = re.compile(r"^\S+?(;\S+?)* \d+$")
    lines = [ln for ln in text.splitlines() if ln.strip()]
    assert lines
    for line in lines:
        assert line_re.match(line), line
    stacks = parse_collapsed(text)
    assert sum(count for _frames, count in stacks) == prof.samples


def test_parse_collapsed_rejects_malformed():
    with pytest.raises(ValueError):
        parse_collapsed("no-count-here\n")
    with pytest.raises(ValueError):
        parse_collapsed("a;;b 3\n")
    assert parse_collapsed("a;b 3\n\nc 1\n") == [(["a", "b"], 3), (["c"], 1)]


def test_capture_cprofile_top_frames():
    result, frames = capture_cprofile(_busy, top_n=5)
    assert result > 0
    assert frames and all("frame" in f and "self_s" in f for f in frames)
    assert len(frames) <= 5


def test_profiled_packet_simulator_case(tmp_path):
    """Acceptance: the packet-simulator case yields non-empty hot frames
    and a parseable collapsed-stack file."""
    doc = run_suite("engine", repeats=1, warmup=0,
                    patterns=["engine.packet_transfer"],
                    profile=True, profile_dir=tmp_path,
                    profile_interval=0.001)
    case = doc["cases"]["engine.packet_transfer"]
    profile = case["profile"]
    assert profile["sampling"]["samples"] > 0
    assert profile["sampling"]["top_frames"]
    assert profile["cprofile"]["top_frames"]
    collapsed = tmp_path / profile["sampling"]["collapsed_file"]
    stacks = parse_collapsed(collapsed.read_text())
    assert stacks and all(count >= 1 for _f, count in stacks)
    # The event engine must show up as a hot frame somewhere.
    all_frames = {f for frames, _c in stacks for f in frames}
    assert any("events.py" in f for f in all_frames)
    json.dumps(doc)


# ---------------------------------------------------------------------- CLI


def test_cli_bench_list(capsys):
    from repro.cli import main

    assert main(["bench", "list"]) == 0
    out = capsys.readouterr().out
    assert "engine.packet_transfer" in out and "tier1" in out
    assert main(["bench", "list", "--suite", "nosuch"]) == 2


def test_cli_bench_run_and_compare_round_trip(tmp_path, capsys):
    from repro.cli import main

    out_path = tmp_path / "BENCH_obs.json"
    rc = main(["bench", "run", "--suite", "obs", "--case", "null_span",
               "--repeats", "3", "--warmup", "0", "--out", str(out_path)])
    assert rc == 0
    doc = results.load(out_path)
    assert doc["suite"] == "obs"
    assert len(doc["cases"]["obs.null_span"]["samples_s"]) == 3
    assert doc["cases"]["obs.null_span"]["metrics"]["bench.per_call_s"] > 0

    # Identical input gates green through the CLI...
    assert main(["bench", "compare", str(out_path), str(out_path)]) == 0
    # ...and an artificially slowed copy gates red.
    slowed = json.loads(out_path.read_text())
    case = slowed["cases"]["obs.null_span"]
    case["samples_s"] = [s * 10 for s in case["samples_s"]]
    case.update(results.case_stats(case["samples_s"]))
    slow_path = tmp_path / "BENCH_slow.json"
    results.write(slowed, slow_path)
    capsys.readouterr()
    assert main(["bench", "compare", str(slow_path), str(out_path)]) == 1
    assert "FAIL" in capsys.readouterr().out
    # Unreadable inputs are a usage error, not a crash.
    assert main(["bench", "compare", str(out_path),
                 str(tmp_path / "nope.json")]) == 2


def test_cli_bench_compare_json_flag(tmp_path, capsys):
    from repro.cli import main

    base = results.write(make_doc({"a": [1.0, 1.0, 1.0]}),
                         tmp_path / "BENCH_base.json")
    cur = results.write(make_doc({"a": [2.0, 2.0, 2.0]}),
                        tmp_path / "BENCH_cur.json")
    # --json PATH: human table on stdout plus the JSON verdict file.
    verdict_path = tmp_path / "verdict.json"
    assert main(["bench", "compare", str(cur), str(base),
                 "--json", str(verdict_path)]) == 1
    out = capsys.readouterr().out
    assert "FAIL" in out and str(verdict_path) in out
    verdict = json.loads(verdict_path.read_text())
    assert verdict["ok"] is False
    assert verdict["cases"]["a"]["status"] == "regression"
    # --json -: machine-readable stdout, no human table.
    assert main(["bench", "compare", str(cur), str(base), "--json", "-"]) == 1
    out = capsys.readouterr().out
    assert "FAIL" not in out
    assert json.loads(out)["exit_code"] == 1


def test_cli_obs_report_renders_bench_document(tmp_path, capsys):
    from repro.cli import main

    doc = make_doc({"a": [0.5, 0.6]})
    path = results.write(doc, tmp_path / "BENCH_t.json")
    assert main(["obs", "report", str(path)]) == 0
    out = capsys.readouterr().out
    assert "(bench)" in out and "median ms" in out and "a" in out
