"""Property-based robustness tests (hypothesis) on the transport core.

These randomize network conditions and check protocol *invariants* — the
statements that must hold for every seed, loss rate and topology shape.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.model import ModelState, decomposition
from repro.net.network import Network
from repro.net.queues import DropTailQueue
from repro.units import mbps, ms


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 10_000),
    loss=st.floats(min_value=0.0, max_value=0.03),
    queue=st.integers(8, 150),
    delay_ms=st.floats(min_value=2.0, max_value=80.0),
)
def test_transfer_always_completes_and_accounts(seed, loss, queue, delay_ms):
    """Under any random loss/queue/delay mix: the transfer completes, every
    segment is acknowledged exactly once, and counters stay consistent."""
    net = Network(seed=seed)
    a, b = net.add_host("a"), net.add_host("b")
    s = net.add_switch("s")
    net.link(a, s, rate_bps=mbps(50), delay=ms(delay_ms) / 2,
             queue_factory=lambda: DropTailQueue(limit_packets=queue))
    net.link(s, b, rate_bps=mbps(50), delay=ms(delay_ms) / 2,
             queue_factory=lambda: DropTailQueue(limit_packets=queue),
             loss_rate=loss)
    conn = net.tcp_connection(net.route([a, s, b]), total_bytes=300_000)
    conn.start()
    net.run_until_complete([conn], timeout=300)
    sf = conn.subflows[0]
    assert conn.completed
    assert sf.acked == conn.supply.total
    assert sf.receiver.rcv_next == conn.supply.total
    assert sf.cwnd >= 1.0
    assert sf.packets_sent >= conn.supply.total
    assert sf.retransmitted == sf.packets_sent - conn.supply.total


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 10_000),
    algorithm=st.sampled_from(["lia", "olia", "balia", "ecmtcp", "dts",
                               "wvegas", "dwc"]),
    loss=st.floats(min_value=0.0, max_value=0.02),
)
def test_mptcp_invariants_under_random_loss(seed, algorithm, loss):
    """Every coupled algorithm keeps windows >= 1, never over-delivers, and
    finishes a two-path transfer under random loss."""
    net = Network(seed=seed)
    a, b = net.add_host("a"), net.add_host("b")
    routes = []
    for i in range(2):
        s = net.add_switch(f"s{i}")
        net.link(a, s, rate_bps=mbps(50), delay=ms(10),
                 queue_factory=lambda: DropTailQueue(limit_packets=60))
        net.link(s, b, rate_bps=mbps(50), delay=ms(10),
                 queue_factory=lambda: DropTailQueue(limit_packets=60),
                 loss_rate=loss)
        routes.append(net.route([a, s, b]))
    conn = net.connection(routes, algorithm, total_bytes=300_000)
    conn.start()
    net.run_until_complete([conn], timeout=300)
    assert conn.completed
    assert all(sf.cwnd >= 1.0 for sf in conn.subflows)
    assert sum(sf.acked for sf in conn.subflows) == conn.supply.total
    assert conn.supply.assigned == conn.supply.total


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(1, 6),
    data=st.data(),
)
def test_decomposition_psi_positive_and_finite(n, data):
    """Every Section IV psi is positive and finite on random states."""
    w = data.draw(st.lists(st.floats(1.0, 500.0), min_size=n, max_size=n))
    rtt = data.draw(st.lists(st.floats(0.001, 1.0), min_size=n, max_size=n))
    base = [r * data.draw(st.floats(0.3, 1.0)) for r in rtt]
    state = ModelState(w=w, rtt=rtt, base_rtt=base)
    for name in ("lia", "olia", "balia", "ecmtcp", "ewtcp", "coupled", "dts"):
        psi = decomposition(name).psi(state)
        assert all(p > 0 for p in psi)
        # ewtcp's psi reaches exactly 4*(w/rtt)^2 = 1e12 at the strategy
        # corner (w=500, rtt=0.001), so the finiteness bound must sit
        # strictly above the attainable extreme.
        assert all(p < 1e13 for p in psi)


@settings(max_examples=50, deadline=None)
@given(
    w=st.lists(st.floats(1.0, 500.0), min_size=2, max_size=5),
    data=st.data(),
)
def test_per_ack_increase_bounded_by_reno_for_friendly_algorithms(w, data):
    """LIA's capped increase never exceeds Reno's 1/w on any state."""
    n = len(w)
    rtt = data.draw(st.lists(st.floats(0.005, 0.5), min_size=n, max_size=n))
    state = ModelState(w=w, rtt=rtt)
    model = decomposition("lia")
    import numpy as np

    capped = np.minimum(model.per_ack_increase(state), 1.0 / np.asarray(w))
    assert np.all(capped <= 1.0 / np.asarray(w) + 1e-12)


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_simulation_is_deterministic_per_seed(seed):
    """Identical seeds give bit-identical outcomes."""

    def run():
        net = Network(seed=seed)
        a, b = net.add_host("a"), net.add_host("b")
        net.link(a, b, rate_bps=mbps(20), delay=ms(5),
                 queue_factory=lambda: DropTailQueue(limit_packets=30),
                 loss_rate=0.01)
        conn = net.tcp_connection(net.route([a, b]), total_bytes=100_000)
        conn.start()
        net.run_until_complete([conn], timeout=120)
        return (conn.completion_time, conn.subflows[0].retransmitted,
                conn.subflows[0].loss_events)

    assert run() == run()
