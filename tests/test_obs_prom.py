"""Prometheus text exposition tests: render, validate, parse back."""

import pytest

from repro.obs import MetricsRegistry
from repro.obs.prom import (
    parse_exposition,
    render_registry,
    render_snapshot,
    sanitize_name,
    validate_exposition,
)


def test_sanitize_name():
    assert sanitize_name("transport.c1.p0.cwnd") == "transport_c1_p0_cwnd"
    assert sanitize_name("a-b c") == "a_b_c"
    assert sanitize_name("9lives") == "_9lives"


def test_render_registry_counter_gauge_histogram_roundtrip():
    reg = MetricsRegistry()
    reg.counter("net.packets").inc(42)
    reg.gauge("cwnd").set(17.5)
    h = reg.histogram("lat", buckets=(1.0, 2.0, 4.0))
    for v in (0.5, 1.5, 1.7, 3.0, 9.0):
        h.observe(v)
    text = render_registry(reg)
    assert validate_exposition(text) == []
    samples = parse_exposition(text)

    assert samples["net_packets_total"] == [({}, 42.0)]
    assert samples["cwnd"] == [({}, 17.5)]
    # Cumulative buckets: 1 obs <=1, 3 <=2, 4 <=4, 5 total.
    by_le = {lab["le"]: v for lab, v in samples["lat_bucket"]}
    assert by_le["1.0"] == 1.0
    assert by_le["2.0"] == 3.0
    assert by_le["4.0"] == 4.0
    assert by_le["+Inf"] == 5.0
    assert samples["lat_count"] == [({}, 5.0)]
    assert samples["lat_sum"] == [({}, pytest.approx(15.7))]


def test_counter_gets_total_suffix_and_counter_type():
    text = render_snapshot({"runs": 3}, kinds={"runs": "counter"})
    assert "# TYPE runs_total counter" in text
    assert "runs_total 3.0" in text


def test_snapshot_without_kinds_defaults_plain_numbers_to_gauge():
    text = render_snapshot({"x": 1.5})
    assert "# TYPE x gauge" in text


def test_help_line_preserves_original_name():
    text = render_snapshot({"a.b-c": 1.0})
    assert "# HELP a_b_c a.b-c" in text


def test_validate_rejects_malformed_sample_line():
    assert validate_exposition("this is not a sample\n")
    assert validate_exposition('x{le="oops} 1\n')  # unbalanced quote


def test_validate_rejects_non_cumulative_buckets():
    bad = (
        '# TYPE h histogram\n'
        'h_bucket{le="1.0"} 5\n'
        'h_bucket{le="2.0"} 3\n'
        'h_bucket{le="+Inf"} 5\n'
        'h_sum 1.0\n'
        'h_count 5\n'
    )
    assert any("cumulative" in e for e in validate_exposition(bad))


def test_validate_rejects_missing_inf_bucket():
    bad = (
        '# TYPE h histogram\n'
        'h_bucket{le="1.0"} 5\n'
        'h_sum 1.0\n'
        'h_count 5\n'
    )
    assert any("+Inf" in e for e in validate_exposition(bad))


def test_validate_rejects_inf_bucket_count_mismatch():
    bad = (
        '# TYPE h histogram\n'
        'h_bucket{le="+Inf"} 4\n'
        'h_sum 1.0\n'
        'h_count 5\n'
    )
    assert any("_count" in e for e in validate_exposition(bad))


def test_validate_rejects_duplicate_type_and_unknown_type():
    bad = "# TYPE x gauge\n# TYPE x gauge\nx 1\n"
    assert any("duplicate" in e for e in validate_exposition(bad))
    assert any("unknown type" in e
               for e in validate_exposition("# TYPE x wibble\nx 1\n"))


def test_parse_exposition_raises_on_invalid_text():
    with pytest.raises(ValueError):
        parse_exposition("== nope ==\n")


def test_special_float_values_render_and_parse():
    reg = MetricsRegistry()
    reg.gauge("g").set(float("inf"))
    text = render_registry(reg)
    assert validate_exposition(text) == []
    assert parse_exposition(text)["g"] == [({}, float("inf"))]


# ------------------------------------------------------- updated_unix stamps

def test_set_gauges_get_updated_unix_companion():
    reg = MetricsRegistry()
    reg.gauge("path0.cwnd").set(12.0)
    reg.counter("engine.events").inc(5)
    reg.gauge("never.set")  # registered but never written
    text = render_registry(reg)
    assert validate_exposition(text) == []
    samples = parse_exposition(text)
    [(labels, value)] = samples["path0_cwnd_updated_unix"]
    assert labels == {} and value > 1e9  # a real wall-clock stamp
    assert "never_set_updated_unix" not in samples
    assert "engine_events_total_updated_unix" not in samples


def test_companion_follows_latest_set(monkeypatch):
    from repro.obs.metrics import Gauge

    clock = iter([100.0, 250.0])
    monkeypatch.setattr(Gauge, "_clock", staticmethod(lambda: next(clock)))
    reg = MetricsRegistry()
    g = reg.gauge("g")
    g.set(1.0)
    g.set(2.0)
    samples = parse_exposition(render_registry(reg))
    assert samples["g_updated_unix"] == [({}, 250.0)]
    assert samples["g"] == [({}, 2.0)]


def test_render_snapshot_updated_map_is_opt_in():
    snap = {"g": 1.0}
    assert "g_updated_unix" not in render_snapshot(snap, {"g": "gauge"})
    text = render_snapshot(snap, {"g": "gauge"}, {"g": 123.5})
    samples = parse_exposition(text)
    assert samples["g_updated_unix"] == [({}, 123.5)]
    # Non-gauge instruments never get a companion even if mapped.
    text = render_snapshot({"c": 1.0}, {"c": "counter"}, {"c": 123.5})
    assert "updated_unix" not in text
