"""CLI tests."""

import pytest

from repro.cli import build_parser, main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig01" in out and "fig17" in out


def test_unknown_figure(capsys):
    assert main(["fig99"]) == 2
    err = capsys.readouterr().err
    assert "unknown figure" in err


def test_version_flag():
    with pytest.raises(SystemExit) as exc:
        build_parser().parse_args(["--version"])
    assert exc.value.code == 0


def test_requires_target():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_all_figures_registered():
    from repro.cli import _figure_runners

    runners = _figure_runners()
    expected = {"fig01", "fig02", "fig03", "fig04", "fig06", "fig07",
                "fig08", "fig09", "fig10", "fig12", "fig13", "fig14",
                "fig15", "fig16", "fig17"}
    assert set(runners) == expected
