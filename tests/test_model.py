"""Tests for the Eq. (3) model and its Section IV decompositions."""

import numpy as np
import pytest

from repro.core.model import (
    CongestionModel,
    ModelState,
    decomposition,
    decompositions,
    make_psi_dts,
    psi_balia,
    psi_coupled,
    psi_ecmtcp,
    psi_ewtcp,
    psi_lia,
    psi_olia,
    psi_wvegas,
)
from repro.errors import ModelError


def state(w, rtt, base=None):
    return ModelState(w=np.asarray(w, float), rtt=np.asarray(rtt, float),
                      base_rtt=None if base is None else np.asarray(base, float))


class TestModelState:
    def test_rates(self):
        st = state([10, 20], [0.1, 0.2])
        assert list(st.x) == pytest.approx([100, 100])

    def test_total_rate(self):
        st = state([10, 20], [0.1, 0.2])
        assert st.total_rate == pytest.approx(200)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ModelError):
            state([10, 20], [0.1])

    def test_nonpositive_rtt_rejected(self):
        with pytest.raises(ModelError):
            state([10], [0.0])

    def test_nonpositive_window_rejected(self):
        with pytest.raises(ModelError):
            state([0.0], [0.1])

    def test_base_rtt_defaults_to_rtt(self):
        st = state([10], [0.1])
        assert st.base_rtt[0] == pytest.approx(0.1)


class TestPsiFormulas:
    def test_lia_symmetric_is_one(self):
        st = state([10, 10], [0.05, 0.05])
        assert list(psi_lia(st)) == pytest.approx([1.0, 1.0])

    def test_lia_favours_best_path(self):
        st = state([20, 10], [0.05, 0.05])
        psi = psi_lia(st)
        assert psi[1] == pytest.approx(2.0)  # max w / w_r
        assert psi[0] == pytest.approx(1.0)

    def test_olia_is_identity(self):
        st = state([3, 7, 11], [0.02, 0.05, 0.08])
        assert list(psi_olia(st)) == [1.0, 1.0, 1.0]

    def test_balia_symmetric_is_one(self):
        st = state([10, 10], [0.05, 0.05])
        assert list(psi_balia(st)) == pytest.approx([1.0, 1.0])

    def test_balia_expansion(self):
        st = state([10, 20], [0.05, 0.05])
        alpha = 2.0
        assert psi_balia(st)[0] == pytest.approx(0.4 + alpha / 2 + alpha**2 / 10)

    def test_ewtcp_value(self):
        st = state([10, 10], [0.05, 0.05])
        x = 200.0
        expected = (2 * x) ** 2 / (x**2 * np.sqrt(2))
        assert psi_ewtcp(st)[0] == pytest.approx(expected)

    def test_coupled_value(self):
        st = state([10, 30], [0.05, 0.05])
        total_x = 800.0
        expected = 0.05**2 * total_x**2 / 40**2
        assert psi_coupled(st)[0] == pytest.approx(expected)

    def test_ecmtcp_symmetric_is_one(self):
        st = state([10, 10], [0.05, 0.05])
        assert list(psi_ecmtcp(st)) == pytest.approx([1.0, 1.0])

    def test_wvegas_symmetric(self):
        st = state([10, 10], [0.06, 0.06], base=[0.05, 0.05])
        psi = psi_wvegas(st)
        assert psi[0] == pytest.approx(psi[1])
        assert psi[0] > 0

    def test_dts_psi_is_epsilon(self):
        psi = make_psi_dts()
        st = state([10, 10], [0.1, 0.05], base=[0.05, 0.05])
        values = psi(st)
        assert values[0] == pytest.approx(1.0)  # ratio 1/2: centre
        assert values[1] > 1.9  # idle path


class TestCongestionModel:
    def test_per_ack_vs_increase_rate_consistency(self):
        # increase_rate = per_ack * x / rtt  (one ACK per segment).
        model = decomposition("lia")
        st = state([10, 25], [0.03, 0.07])
        per_ack = model.per_ack_increase(st)
        rate = model.increase_rate(st)
        assert list(rate) == pytest.approx(list(per_ack * st.x / st.rtt))

    def test_rate_derivative_at_balance_is_zero(self):
        model = decomposition("olia")
        # psi = 1: balance when 1/(rtt^2 total^2) = 0.5 * p.
        rtt = np.array([0.05, 0.05])
        w = np.array([10.0, 10.0])
        st = ModelState(w=w, rtt=rtt)
        total = st.total_rate
        p = 2.0 / (rtt**2 * total**2) * 0.5 * 2  # solve beta*p = 1/(rtt^2 T^2)
        p = 1.0 / (0.5 * rtt**2 * total**2)
        deriv = model.rate_derivative(st, p)
        assert list(deriv) == pytest.approx([0.0, 0.0], abs=1e-9)

    def test_default_beta_is_half(self):
        model = decomposition("balia")
        st = state([10, 10], [0.05, 0.05])
        assert list(model.beta(st)) == [0.5, 0.5]

    def test_default_phi_is_zero(self):
        model = decomposition("lia")
        st = state([10, 10], [0.05, 0.05])
        assert list(model.phi(st)) == [0.0, 0.0]

    def test_wvegas_has_unit_step(self):
        assert decomposition("wvegas").delta == 1.0
        assert decomposition("lia").delta == 0.0

    def test_all_decompositions_present(self):
        names = set(decompositions())
        assert names == {"ewtcp", "coupled", "lia", "olia", "balia",
                         "ecmtcp", "wvegas", "dts"}

    def test_unknown_decomposition_rejected(self):
        with pytest.raises(ModelError):
            decomposition("bbr")


class TestControllerModelConsistency:
    """The packet-level per-ACK rules must equal the model's translation."""

    def _fake(self, w, rtt, base=None):
        from tests.test_controllers import FakeSubflow

        return [FakeSubflow(wi, ri, None if base is None else base[i])
                for i, (wi, ri) in enumerate(zip(w, rtt))]

    @pytest.mark.parametrize("name", ["lia", "balia", "ecmtcp", "ewtcp", "coupled"])
    def test_per_ack_increase_matches_decomposition(self, name):
        from repro.algorithms import create_controller

        w = [12.0, 28.0]
        rtt = [0.03, 0.08]
        subflows = self._fake(w, rtt)
        ctrl = create_controller(name)
        ctrl.attach(subflows)
        before = [s.cwnd for s in subflows]
        ctrl.on_ack(subflows[0])
        measured = subflows[0].cwnd - before[0]

        model = decomposition(name)
        st = state(w, rtt)
        expected = model.per_ack_increase(st)[0]
        if name == "lia":
            expected = min(expected, 1.0 / w[0])
        assert measured == pytest.approx(expected, rel=1e-9)

    def test_dts_matches_decomposition(self):
        from repro.algorithms import create_controller

        w = [12.0, 28.0]
        rtt = [0.06, 0.08]
        base = [0.03, 0.08]
        subflows = self._fake(w, rtt, base)
        ctrl = create_controller("dts")
        ctrl.attach(subflows)
        before = subflows[0].cwnd
        ctrl.on_ack(subflows[0])
        measured = subflows[0].cwnd - before

        model = CongestionModel("dts", make_psi_dts())
        expected = model.per_ack_increase(state(w, rtt, base))[0]
        assert measured == pytest.approx(expected, rel=1e-9)
