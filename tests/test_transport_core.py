"""Sans-IO core equivalence: the DES sender and SenderCore are one machine.

Three layers of proof that the :mod:`repro.transport.core` refactor did
not change packet-level behaviour:

1. **Golden scenarios** — four seed-captured MPTCP transfers (different
   controllers, loss rates, delayed ACKs) must reproduce the exact
   pre-refactor completion times, event counts, and full per-subflow
   float state.
2. **Campaign-executor golden** — a fig12-style fluid point must stay
   byte-identical through :func:`repro.campaign.executor.execute_run`.
3. **Record/replay bit-equivalence (hypothesis)** — record every ACK
   arrival, RTO firing and emission from a randomized DES run, replay
   the inputs into wall-clock-style :class:`SenderCore` instances, and
   require the *entire state trajectory* (window, scoreboard, RTT
   estimator, counters) and every emission to match exactly.
"""

from __future__ import annotations

import dataclasses

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.net.flow import SegmentSupply, TcpSender
from repro.net.network import Network
from repro.net.queues import DropTailQueue
from repro.transport.core import PathProfile, ReceiverCore, SenderCore, SenderState
from repro.units import mb, mbps, ms

# --------------------------------------------------------------- conformance

STATE_FIELDS = [f.name for f in dataclasses.fields(SenderState)]


def _build_des_sender() -> TcpSender:
    net = Network(seed=1)
    a, b = net.add_host("a"), net.add_host("b")
    s = net.add_switch("s")
    net.link(a, s, rate_bps=mbps(100), delay=ms(2))
    net.link(s, b, rate_bps=mbps(100), delay=ms(2))
    conn = net.connection([net.route([a, s, b])], "lia", total_bytes=mb(1))
    return conn.subflows[0]


def test_tcpsender_carries_every_senderstate_field():
    sender = _build_des_sender()
    for name in STATE_FIELDS:
        assert hasattr(sender, name), f"TcpSender lost field {name}"
    assert isinstance(sender, SenderState)


def test_sendercore_carries_every_senderstate_field():
    core = SenderCore(SegmentSupply(10), clock=lambda: 0.0)
    for name in STATE_FIELDS:
        assert hasattr(core, name), f"SenderCore lost field {name}"
    # The controller-facing duck-type surface beyond the dataclass:
    assert core.route.base_rtt() > 0
    assert core.route.switch_hops() == 0
    assert core.sim.now == 0.0
    assert core.rtt > 0
    assert core.inflight == 0


def test_identity_semantics_preserved():
    # The dataclass must not smuggle in field-wise __eq__/__hash__ — DES
    # code keys senders by identity in sets and dicts.
    a = _build_des_sender()
    b = _build_des_sender()
    assert a != b
    assert len({a, b}) == 2


# ----------------------------------------------------------- golden scenarios

def _run_scenario(algo, nsub, delayed_acks, seed, loss):
    net = Network(seed=seed)
    a, b = net.add_host("a"), net.add_host("b")
    routes = []
    for i in range(nsub):
        s = net.add_switch(f"s{i}")
        net.link(a, s, rate_bps=mbps(100), delay=ms(2 + 3 * i),
                 queue_factory=lambda: DropTailQueue(limit_packets=50))
        net.link(s, b, rate_bps=mbps(60), delay=ms(2 + 3 * i),
                 queue_factory=lambda: DropTailQueue(limit_packets=12),
                 loss_rate=loss)
        routes.append(net.route([a, s, b]))
    conn = net.connection(routes, algo, total_bytes=mb(2),
                          delayed_acks=delayed_acks)
    conn.start()
    net.run_until_complete([conn], timeout=300)
    rec = {"completion_time": conn.supply.completion_time,
           "events": net.sim.events_processed}
    rec["subflows"] = [
        {"acked": sf.acked, "base_rtt": sf.base_rtt, "cwnd": sf.cwnd,
         "fast_retransmits": sf.fast_retransmits, "high_water": sf.high_water,
         "loss_events": sf.loss_events, "next_seq": sf.next_seq,
         "packets_sent": sf.packets_sent, "retransmitted": sf.retransmitted,
         "rto": sf.rto, "rttvar": sf.rttvar, "srtt": sf.srtt,
         "ssthresh": sf.ssthresh, "timeouts": sf.timeouts}
        for sf in conn.subflows
    ]
    return rec


# Captured from the pre-refactor tree (PR 5 head) with _run_scenario above;
# every float must match to the last bit.
GOLDEN = {
    "lia_2_delack": {
        "args": ("lia", 2, True, 7, 0.01),
        "completion_time": 1.31036906666666,
        "events": 8514,
        "subflows": [
            {"acked": 691, "base_rtt": 0.008328533333333277,
             "cwnd": 4.724681156207708, "fast_retransmits": 9,
             "high_water": 691, "loss_events": 9, "next_seq": 691,
             "packets_sent": 701, "retransmitted": 10, "rto": 0.2,
             "rttvar": 0.010079516712703407, "srtt": 0.013478544877488816,
             "ssthresh": 4.430647797918585, "timeouts": 0},
            {"acked": 679, "base_rtt": 0.020328533333332954,
             "cwnd": 21.275422160784117, "fast_retransmits": 3,
             "high_water": 679, "loss_events": 3, "next_seq": 679,
             "packets_sent": 682, "retransmitted": 3, "rto": 0.2,
             "rttvar": 0.00998584758347065, "srtt": 0.025484630702824116,
             "ssthresh": 6.290561776733618, "timeouts": 0},
        ],
    },
    "dts_3_plain": {
        "args": ("dts", 3, False, 11, 0.005),
        "completion_time": 0.3672138666666669,
        "events": 11057,
        "subflows": [
            {"acked": 730, "base_rtt": 0.008328533333333304,
             "cwnd": 19.511721267535275, "fast_retransmits": 3,
             "high_water": 730, "loss_events": 3, "next_seq": 730,
             "packets_sent": 746, "retransmitted": 16, "rto": 0.2,
             "rttvar": 2.563448598139865e-06, "srtt": 0.00832981779000481,
             "ssthresh": 12.296719388351864, "timeouts": 0},
            {"acked": 379, "base_rtt": 0.020328533333333315,
             "cwnd": 16.53389199771033, "fast_retransmits": 2,
             "high_water": 379, "loss_events": 2, "next_seq": 379,
             "packets_sent": 394, "retransmitted": 15, "rto": 0.2,
             "rttvar": 2.3803149610747386e-07, "srtt": 0.02032865237182131,
             "ssthresh": 16.097481407955303, "timeouts": 0},
            {"acked": 261, "base_rtt": 0.032328533333333326,
             "cwnd": 31.998041804419035, "fast_retransmits": 1,
             "high_water": 261, "loss_events": 1, "next_seq": 261,
             "packets_sent": 275, "retransmitted": 14, "rto": 0.2,
             "rttvar": 7.131937317636155e-06, "srtt": 0.032332134735816934,
             "ssthresh": 31.5, "timeouts": 0},
        ],
    },
    "olia_2_heavyloss": {
        "args": ("olia", 2, False, 3, 0.03),
        "completion_time": 1.9496831999999853,
        "events": 11186,
        "subflows": [
            {"acked": 891, "base_rtt": 0.008328533333333277,
             "cwnd": 5.912216324009692, "fast_retransmits": 21,
             "high_water": 891, "loss_events": 23, "next_seq": 891,
             "packets_sent": 926, "retransmitted": 35, "rto": 0.2,
             "rttvar": 5.3520364025689986e-05, "srtt": 0.00835843632994433,
             "ssthresh": 5.065316355254363, "timeouts": 2},
            {"acked": 479, "base_rtt": 0.020328533333332954,
             "cwnd": 2.0074505403415093, "fast_retransmits": 7,
             "high_water": 479, "loss_events": 10, "next_seq": 479,
             "packets_sent": 509, "retransmitted": 30, "rto": 0.2,
             "rttvar": 1.375015419274167e-05, "srtt": 0.02033554111313477,
             "ssthresh": 2.0, "timeouts": 3},
        ],
    },
    "dts-ext_2_plain": {
        "args": ("dts-ext", 2, False, 5, 0.01),
        "completion_time": 0.5163119999999994,
        "events": 11010,
        "subflows": [
            {"acked": 1160, "base_rtt": 0.008328533333333277,
             "cwnd": 34.85713350836939, "fast_retransmits": 6,
             "high_water": 1160, "loss_events": 6, "next_seq": 1160,
             "packets_sent": 1172, "retransmitted": 12, "rto": 0.2,
             "rttvar": 0.0001058614469786184, "srtt": 0.008591290238621716,
             "ssthresh": 10.395609436095002, "timeouts": 0},
            {"acked": 210, "base_rtt": 0.020328533333333287,
             "cwnd": 4.100564936851923, "fast_retransmits": 3,
             "high_water": 210, "loss_events": 3, "next_seq": 210,
             "packets_sent": 214, "retransmitted": 4, "rto": 0.2,
             "rttvar": 5.790651971252815e-06, "srtt": 0.020331450938925924,
             "ssthresh": 4.066147217480664, "timeouts": 0},
        ],
    },
}


def _assert_golden(name):
    golden = GOLDEN[name]
    got = _run_scenario(*golden["args"])
    want = {k: v for k, v in golden.items() if k != "args"}
    assert got == want, f"{name} diverged from the seed capture"


def test_golden_lia_with_delayed_acks():
    _assert_golden("lia_2_delack")


def test_golden_dts_three_subflows():
    _assert_golden("dts_3_plain")


def test_golden_olia_heavy_loss_with_timeouts():
    _assert_golden("olia_2_heavyloss")


def test_golden_extended_dts():
    _assert_golden("dts-ext_2_plain")


# ----------------------------------------------- campaign-executor golden

def test_fig12_point_byte_identical_through_campaign_executor():
    from repro.campaign.executor import execute_run
    from repro.campaign.spec import RunSpec

    result = execute_run(RunSpec(topology="bcube", n_subflows=2, seed=1,
                                 duration=2.0, dt=0.004))
    metrics = result["metrics"]
    assert metrics["aggregate_goodput_bps"] == 2980536174.797121
    assert metrics["host_energy_j"] == 3364.5863657127907
    assert metrics["total_energy_j"] == 6610.222098189914
    assert metrics["energy_per_gb"] == 8871.18519692499
    assert metrics["delivered_bits"] == 5961072349.594242
    assert metrics["mean_rtt_s"] == 0.018323600758671246
    assert metrics["loss_events"] == 11


# ------------------------------------------- record/replay bit-equivalence

#: Per-subflow state snapshot compared after every replayed event.
_TRAJECTORY_ATTRS = (
    "cwnd", "ssthresh", "next_seq", "high_water", "acked", "dup_acks",
    "in_recovery", "recover_point", "_sacked", "_retransmitted_holes",
    "_retx_outstanding", "_max_sacked", "_pipe_cache", "_rto_recovery",
    "srtt", "rttvar", "base_rtt", "latest_rtt", "rto", "_rto_backoff",
    "fast_retransmits", "timeouts", "loss_events", "packets_sent",
    "retransmitted",
)


def _snapshot(sender):
    return {
        a: (set(v) if isinstance(v, set) else v)
        for a, v in ((a, getattr(sender, a)) for a in _TRAJECTORY_ATTRS)
    }


def _record_des_run(algo, nsub, seed, loss, total_bytes):
    """Run a DES transfer, logging per-sender inputs + state trajectory."""
    net = Network(seed=seed)
    a, b = net.add_host("a"), net.add_host("b")
    routes = []
    for i in range(nsub):
        s = net.add_switch(f"s{i}")
        net.link(a, s, rate_bps=mbps(80), delay=ms(1 + 2 * i),
                 queue_factory=lambda: DropTailQueue(limit_packets=30))
        net.link(s, b, rate_bps=mbps(50), delay=ms(1 + 2 * i),
                 queue_factory=lambda: DropTailQueue(limit_packets=10),
                 loss_rate=loss)
        routes.append(net.route([a, s, b]))
    conn = net.connection(routes, algo, total_bytes=total_bytes)
    events = []  # (kind, subflow, payload, post_state, emissions)
    emissions = []  # mutable buffer the wrapped _send_segment fills

    for index, sf in enumerate(conn.subflows):
        def make_wrappers(sf=sf, index=index):
            orig_receive = sf.receive
            orig_send = sf._send_segment
            orig_rto = sf._on_rto
            orig_begin = sf._begin

            def send_segment(seq, *, is_retransmit):
                emissions.append((seq, is_retransmit))
                return orig_send(seq, is_retransmit=is_retransmit)

            def receive(packet):
                if not packet.is_ack:
                    return orig_receive(packet)
                payload = (net.sim.now, packet.ack_seq, packet.sack_seq,
                           packet.ecn_echo, packet.echo_time)
                emissions.clear()
                orig_receive(packet)
                events.append(("ack", index, payload, _snapshot(sf),
                               list(emissions)))

            def on_rto():
                now = net.sim.now
                emissions.clear()
                orig_rto()
                events.append(("rto", index, (now,), _snapshot(sf),
                               list(emissions)))

            def begin():
                emissions.clear()
                orig_begin()
                events.append(("start", index, (net.sim.now,),
                               _snapshot(sf), list(emissions)))

            sf.receive = receive
            sf._send_segment = send_segment
            sf._on_rto = on_rto
            sf._begin = begin

        make_wrappers()
    conn.start()
    net.run_until_complete([conn], timeout=120)
    return conn, events


def _replay_into_cores(conn, events, algo):
    """Feed the recorded inputs into SenderCores; compare trajectories."""
    from repro.algorithms import create_controller

    supply = SegmentSupply(conn.supply.total)
    clock = [0.0]
    controller = create_controller(algo)
    cores = []
    for index, sf in enumerate(conn.subflows):
        core = SenderCore(
            supply,
            clock=lambda: clock[0],
            subflow_index=index,
            mss=sf.mss,
            packet_bytes=sf.packet_bytes,
            path=PathProfile(base_rtt=sf.route.base_rtt(),
                             switch_hops=sf.route.switch_hops()),
        )
        core.controller = controller
        cores.append(core)
    controller.attach(cores)

    for step, (kind, index, payload, want_state, want_emits) in enumerate(events):
        core = cores[index]
        clock[0] = payload[0]
        if kind == "start":
            core.start()
        elif kind == "ack":
            _, ack_seq, sack_seq, ecn_echo, echo_time = payload
            core.on_ack(ack_seq, sack_seq=sack_seq, ecn_echo=ecn_echo,
                        echo_time=echo_time)
        else:  # rto
            core._on_rto()
        got_emits = [(op.seq, op.is_retransmit) for op in core.take_emits()]
        assert got_emits == want_emits, (
            f"step {step} ({kind} sf{index}): emissions diverged")
        got_state = _snapshot(core)
        assert got_state == want_state, (
            f"step {step} ({kind} sf{index}): state diverged: "
            + str({k: (got_state[k], want_state[k])
                   for k in want_state if got_state[k] != want_state[k]}))


@given(
    algo=st.sampled_from(["lia", "olia", "balia", "dts", "dts-ext"]),
    nsub=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=10_000),
    loss=st.sampled_from([0.0, 0.005, 0.02, 0.05]),
)
@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_des_sender_and_sans_io_core_are_bit_equivalent(algo, nsub, seed, loss):
    conn, events = _record_des_run(algo, nsub, seed, loss,
                                   total_bytes=200 * 1024)
    assert events, "scenario produced no transport events"
    _replay_into_cores(conn, events, algo)


def test_record_replay_covers_loss_machinery():
    # One pinned heavy-loss case so recovery + RTO replay is always
    # exercised even if hypothesis draws only clean runs.
    conn, events = _record_des_run("lia", 2, 3, 0.05, total_bytes=400 * 1024)
    assert any(k == "rto" for k, *_ in events) or any(
        sf.fast_retransmits for sf in conn.subflows)
    _replay_into_cores(conn, events, "lia")


# ------------------------------------------------------------ receiver core

def test_receiver_core_reorders_and_sacks():
    r = ReceiverCore()
    ack = r.on_data(0, 1.0, 100)
    assert (ack.ack_seq, ack.sack_seq, ack.echo_time) == (1, -1, 1.0)
    ack = r.on_data(2, 1.1, 100)
    assert (ack.ack_seq, ack.sack_seq) == (1, 2)
    ack = r.on_data(1, 1.2, 100)
    assert (ack.ack_seq, ack.sack_seq) == (3, -1)
    assert r.duplicates == 0
    ack = r.on_data(1, 1.3, 100)
    assert r.duplicates == 1
    assert ack.ack_seq == 3


def test_sender_core_happy_path_lockstep():
    supply = SegmentSupply(6)
    clock = [0.0]
    core = SenderCore(supply, clock=lambda: clock[0], initial_cwnd=2.0)
    core.start()
    assert [op.seq for op in core.take_emits()] == [0, 1]
    assert core.rto_deadline > 0
    clock[0] = 0.05
    core.on_ack(1, echo_time=0.0)
    assert core.srtt == 0.05
    assert [op.seq for op in core.take_emits()] == [2, 3]
    clock[0] = 0.1
    core.on_ack(4, echo_time=0.05)
    assert [op.seq for op in core.take_emits()] == [4, 5]
    clock[0] = 0.15
    core.on_ack(6, echo_time=0.1)
    assert supply.completed
    assert core.done
    assert core.rto_deadline == float("inf")


def test_sender_core_rto_via_on_tick():
    supply = SegmentSupply(4)
    clock = [0.0]
    core = SenderCore(supply, clock=lambda: clock[0], initial_cwnd=2.0)
    core.start()
    core.take_emits()
    deadline = core.rto_deadline
    assert core.on_tick() == deadline  # not due yet: unchanged
    clock[0] = deadline + 0.001
    core.on_tick()
    assert core.timeouts == 1
    assert core.cwnd == 1.0
    retx = core.take_emits()
    assert retx and (retx[0].seq, retx[0].is_retransmit) == (0, True)
