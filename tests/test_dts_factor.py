"""Tests for the DTS factor (Eq. 5) and Algorithm 1's Taylor form."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.dts import (
    DtsFactorConfig,
    epsilon_exact,
    epsilon_series,
    epsilon_taylor,
    rtt_ratio,
    taylor_absolute_error,
)
from repro.errors import ModelError


class TestRttRatio:
    def test_idle_path_is_one(self):
        assert rtt_ratio(0.05, 0.05) == 1.0

    def test_clamped_above(self):
        assert rtt_ratio(0.06, 0.05) == 1.0

    def test_congested_path_below_one(self):
        assert rtt_ratio(0.05, 0.2) == pytest.approx(0.25)

    def test_no_sample_defaults_to_one(self):
        assert rtt_ratio(float("inf"), 0.05) == 1.0
        assert rtt_ratio(0.0, 0.05) == 1.0

    def test_nonpositive_rtt_rejected(self):
        with pytest.raises(ModelError):
            rtt_ratio(0.05, 0.0)


class TestExactEpsilon:
    def test_center_value_is_one(self):
        # At ratio = 1/2 the sigmoid is exactly half its ceiling.
        assert epsilon_exact(1.0, 2.0) == pytest.approx(1.0)

    def test_idle_path_close_to_two(self):
        assert epsilon_exact(0.05, 0.05) == pytest.approx(2 / (1 + math.exp(-5)))

    def test_deeply_congested_near_zero(self):
        assert epsilon_exact(0.01, 1.0) < 0.02

    def test_monotone_in_ratio(self):
        values = epsilon_series(1.0, [10.0, 5.0, 2.0, 1.25, 1.0])
        assert values == sorted(values)

    def test_bounded_by_ceiling(self):
        for rtt in (0.05, 0.1, 0.5, 5.0):
            assert 0.0 < epsilon_exact(0.05, rtt) < 2.0

    def test_custom_slope_and_center(self):
        # Gentler slope moves the idle value down.
        steep = epsilon_exact(0.05, 0.05, slope=10)
        gentle = epsilon_exact(0.05, 0.05, slope=2)
        assert gentle < steep

    @given(st.floats(min_value=0.001, max_value=1.0))
    def test_property_bounds(self, ratio):
        value = epsilon_exact(ratio, 1.0)
        assert 0.0 < value < 2.0

    @given(st.floats(min_value=0.01, max_value=0.99),
           st.floats(min_value=0.001, max_value=0.01))
    def test_property_monotonicity(self, ratio, step):
        lower = epsilon_exact(ratio, 1.0)
        higher = epsilon_exact(min(ratio + step, 1.0), 1.0)
        assert higher >= lower


class TestTaylorEpsilon:
    def test_matches_exact_at_center(self):
        # u = 0: the cubic is exact there.
        assert epsilon_taylor(0.5, 1.0) == pytest.approx(epsilon_exact(0.5, 1.0))

    def test_close_to_exact_near_center(self):
        for ratio in (0.4, 0.45, 0.5, 0.55, 0.6):
            assert taylor_absolute_error(ratio) < 0.05

    def test_diverges_at_extremes_but_stays_bounded(self):
        # The kernel's cubic is a poor fit at ratio -> 1, but must stay in
        # (0, 2).
        for ratio in (0.05, 0.95, 1.0):
            value = epsilon_taylor(ratio, 1.0)
            assert 0.0 < value < 2.0

    def test_clamps_negative_cubic(self):
        # Deep congestion drives the raw cubic negative; clamp keeps eps > 0.
        assert epsilon_taylor(0.01, 1.0) > 0.0

    def test_monotone_over_practical_range(self):
        ratios = [0.3, 0.4, 0.5, 0.6, 0.7]
        values = [epsilon_taylor(r, 1.0) for r in ratios]
        assert values == sorted(values)

    def test_error_helper_validates_input(self):
        with pytest.raises(ModelError):
            taylor_absolute_error(0.0)


class TestConfig:
    def test_defaults_are_papers(self):
        cfg = DtsFactorConfig()
        assert cfg.slope == 10.0
        assert cfg.center == 0.5
        assert cfg.ceiling == 2.0
        assert not cfg.use_taylor

    def test_taylor_dispatch(self):
        cfg = DtsFactorConfig(use_taylor=True)
        assert cfg.epsilon(0.5, 1.0) == pytest.approx(epsilon_taylor(0.5, 1.0))

    def test_exact_dispatch(self):
        cfg = DtsFactorConfig()
        assert cfg.epsilon(0.4, 1.0) == pytest.approx(epsilon_exact(0.4, 1.0))

    def test_invalid_slope_rejected(self):
        with pytest.raises(ModelError):
            DtsFactorConfig(slope=0)

    def test_invalid_ceiling_rejected(self):
        with pytest.raises(ModelError):
            DtsFactorConfig(ceiling=-1)

    def test_expectation_near_one_with_uniform_ratio(self):
        # The paper's TCP-friendliness argument: E[eps] = 1 when the ratio
        # is uniform on (0, 1) (its "expectation is 1/2" reading).
        import numpy as np

        ratios = np.linspace(0.001, 1.0, 20001)
        mean = float(np.mean([epsilon_exact(r, 1.0) for r in ratios]))
        assert mean == pytest.approx(1.0, abs=0.05)
