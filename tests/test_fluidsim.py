"""Fluid-simulator tests: state reductions, adapters, network, engine."""

import numpy as np
import pytest

from repro.core.model import ModelState, decomposition
from repro.errors import AlgorithmError, ConfigurationError
from repro.fluidsim import (
    FluidNetwork,
    FluidSimulation,
    create_fluid_algorithm,
    fluid_algorithm_names,
)
from repro.fluidsim.state import CohortState
from repro.topology import Ec2Cloud, FatTree
from repro.topology.base import DcTopology
from repro.units import mbps, ms


def cohort_state(w, rtt, base=None, user_starts=(0,), loss=None, queueing=None,
                 hops=None, marked=None):
    n = len(w)
    starts = np.asarray(user_starts, dtype=np.int64)
    user_of = np.zeros(n, dtype=np.int64)
    for u, s in enumerate(starts):
        end = starts[u + 1] if u + 1 < len(starts) else n
        user_of[s:end] = u
    return CohortState(
        w=np.asarray(w, float),
        rtt=np.asarray(rtt, float),
        base_rtt=np.asarray(base if base is not None else rtt, float),
        loss=np.asarray(loss if loss is not None else np.zeros(n), float),
        queueing=np.asarray(queueing if queueing is not None else np.zeros(n), float),
        switch_hops=np.asarray(hops if hops is not None else np.zeros(n), float),
        ecn_marked=np.asarray(marked if marked is not None else np.zeros(n), float),
        user_starts=starts,
        user_of=user_of,
    )


class TestCohortState:
    def test_user_sum_broadcast(self):
        st = cohort_state([1, 2, 3, 4], [0.1] * 4, user_starts=(0, 2))
        assert list(st.user_sum(st.w)) == [3, 3, 7, 7]

    def test_user_max(self):
        st = cohort_state([1, 5, 3, 4], [0.1] * 4, user_starts=(0, 2))
        assert list(st.user_max(st.w)) == [5, 5, 4, 4]

    def test_user_min(self):
        st = cohort_state([1, 5, 3, 4], [0.1] * 4, user_starts=(0, 2))
        assert list(st.user_min(st.w)) == [1, 1, 3, 3]

    def test_user_count(self):
        st = cohort_state([1, 5, 3], [0.1] * 3, user_starts=(0, 2))
        assert list(st.user_count()) == [2, 2, 1]

    def test_x_pkts(self):
        st = cohort_state([10], [0.05])
        assert st.x_pkts[0] == pytest.approx(200.0)


class TestAdapters:
    def test_registry(self):
        names = fluid_algorithm_names()
        assert "lia" in names and "dts-ext" in names

    def test_unknown_rejected(self):
        with pytest.raises(AlgorithmError):
            create_fluid_algorithm("vegas-prime")

    @pytest.mark.parametrize("name", ["lia", "balia", "ecmtcp", "ewtcp", "coupled"])
    def test_adapter_matches_decomposition(self, name):
        w = [12.0, 28.0]
        rtt = [0.03, 0.08]
        st = cohort_state(w, rtt)
        adapter = create_fluid_algorithm(name)
        measured = adapter.per_ack_increase(st)

        model = decomposition(name)
        expected = model.per_ack_increase(ModelState(w=np.array(w), rtt=np.array(rtt)))
        if name == "lia":
            expected = np.minimum(expected, 1.0 / np.array(w))
        assert list(measured) == pytest.approx(list(expected), rel=1e-6)

    def test_reno_uncoupled(self):
        st = cohort_state([10, 20], [0.05, 0.05])
        inc = create_fluid_algorithm("reno").per_ack_increase(st)
        assert list(inc) == pytest.approx([0.1, 0.05])

    def test_olia_adds_alpha_term(self):
        # Path 1 is best (lower loss) but has the smaller window.
        st = cohort_state([10, 20], [0.05, 0.05], loss=[0.001, 0.05])
        olia = create_fluid_algorithm("olia")
        inc = olia.per_ack_increase(st)
        coupled = olia._coupled_base(st)
        assert inc[0] > coupled[0]  # boosted
        assert inc[1] < coupled[1]  # drained

    def test_dts_epsilon_vectorized(self):
        st = cohort_state([10, 10], [0.1, 0.05], base=[0.05, 0.05])
        dts = create_fluid_algorithm("dts")
        eps = dts.epsilon(st)
        assert eps[0] == pytest.approx(1.0, rel=1e-6)
        assert eps[1] > 1.9

    def test_dts_ext_drain_negative(self):
        st = cohort_state([10, 10], [0.05, 0.05], hops=[4, 4])
        ext = create_fluid_algorithm("dts-ext", kappa=1e-3)
        adj = ext.rate_adjustment(st, dt=0.01)
        assert all(adj < 0)

    def test_wvegas_balances_to_target(self):
        # Heavy backlog shrinks, empty queue grows.
        st = cohort_state([40, 10], [0.1, 0.05], base=[0.05, 0.05],
                          queueing=[0.05, 0.0])
        wv = create_fluid_algorithm("wvegas")
        adj = wv.rate_adjustment(st, dt=0.1)
        assert adj[0] < 0 < adj[1]

    def test_balia_decrease_range(self):
        st = cohort_state([10, 40], [0.05, 0.05])
        factors = create_fluid_algorithm("balia").loss_decrease_factor(st)
        assert factors[0] == pytest.approx(0.25)  # alpha capped at 1.5
        assert factors[1] == pytest.approx(0.5)

    def test_dctcp_drains_only_when_marked(self):
        st = cohort_state([20, 20], [0.05, 0.05], marked=[1.0, 0.0])
        dctcp = create_fluid_algorithm("dctcp")
        # Warm the alpha estimator.
        for _ in range(200):
            adj = dctcp.rate_adjustment(st, dt=0.01)
        assert adj[0] < 0
        assert adj[1] == 0


def tiny_topology():
    class Pair(DcTopology):
        def __init__(self):
            super().__init__()
            self.add_host("a")
            self.add_host("b")
            self.add_switch("s")
            self.add_duplex_link("a", "s", mbps(100), ms(2), "host-sw", "sw-host")
            self.add_duplex_link("s", "b", mbps(100), ms(2), "sw-host", "host-sw")

        def paths(self, src, dst, n):
            return [self.path_from_nodes([src, "s", dst])]

    return Pair()


class TestFluidNetwork:
    def test_finalize_builds_arrays(self):
        net = FluidNetwork(tiny_topology())
        net.add_connection("a", "b", "lia", n_subflows=1)
        net.finalize()
        assert net.n_subflows == 1
        assert net.routing.shape == (4, 1)
        assert net.base_rtt[0] == pytest.approx(0.008)

    def test_add_after_finalize_rejected(self):
        net = FluidNetwork(tiny_topology())
        net.add_connection("a", "b", "lia", n_subflows=1)
        net.finalize()
        with pytest.raises(ConfigurationError):
            net.add_connection("a", "b", "lia", n_subflows=1)

    def test_double_finalize_rejected(self):
        net = FluidNetwork(tiny_topology())
        net.add_connection("a", "b", "lia", n_subflows=1)
        net.finalize()
        with pytest.raises(ConfigurationError):
            net.finalize()

    def test_endpoint_counts(self):
        net = FluidNetwork(tiny_topology())
        net.add_connection("a", "b", "lia", n_subflows=1)
        net.finalize()
        # Both endpoints hold one subflow each; nothing relays.
        assert list(net.host_endpoint_count) == [1, 1]

    def test_cohorts_group_by_algorithm(self):
        ec2 = Ec2Cloud(n_hosts=4)
        net = FluidNetwork(ec2)
        net.add_connection("vm0", "vm1", "lia", n_subflows=2)
        net.add_connection("vm2", "vm3", "lia", n_subflows=2)
        net.add_connection("vm1", "vm2", "reno", n_subflows=1)
        net.finalize()
        assert len(net.cohorts) == 2
        sizes = sorted(len(c.ids) for c in net.cohorts)
        assert sizes == [1, 4]

    def test_ecmp_sampling_varies_paths(self):
        ft = FatTree(4)
        chosen = set()
        for seed in range(6):
            net = FluidNetwork(ft, path_seed=seed)
            conn = net.add_connection(ft.hosts[0], ft.hosts[-1], "lia",
                                      n_subflows=1)
            chosen.add(conn.paths[0].link_indices)
        assert len(chosen) > 1

    def test_no_path_rejected(self):
        class Disconnected(DcTopology):
            def __init__(self):
                super().__init__()
                self.add_host("a")
                self.add_host("b")

            def paths(self, src, dst, n):
                return []

        net = FluidNetwork(Disconnected())
        with pytest.raises(ConfigurationError):
            net.add_connection("a", "b", "lia", n_subflows=1)


class TestFluidEngine:
    def run_pair(self, algorithm="reno", duration=20.0, seed=1):
        net = FluidNetwork(tiny_topology())
        net.add_connection("a", "b", algorithm, n_subflows=1)
        net.finalize()
        sim = FluidSimulation(net, dt=0.002, seed=seed)
        return sim.run(duration)

    def test_single_flow_fills_link(self):
        res = self.run_pair()
        assert res.aggregate_goodput_bps > mbps(70)
        assert res.aggregate_goodput_bps <= mbps(100) * 1.01

    def test_delivered_bits_consistent(self):
        res = self.run_pair(duration=10.0)
        assert res.connection_bits[0] == pytest.approx(
            res.connection_goodput_bps[0] * 10.0
        )

    def test_losses_occur_at_overload(self):
        res = self.run_pair()
        assert res.loss_events.sum() > 0

    def test_energy_positive_and_sane(self):
        res = self.run_pair(duration=10.0)
        assert res.host_energy_j > 0
        assert res.switch_energy_j > 0
        # Two hosts idling at 20 W for 10 s is the floor.
        assert res.host_energy_j > 2 * 20.0 * 10.0 * 0.9

    def test_deterministic_given_seed(self):
        a = self.run_pair(seed=3)
        b = self.run_pair(seed=3)
        assert a.aggregate_goodput_bps == pytest.approx(b.aggregate_goodput_bps)
        assert a.total_energy_j == pytest.approx(b.total_energy_j)

    def test_seed_changes_loss_pattern(self):
        a = self.run_pair(seed=3)
        b = self.run_pair(seed=4)
        assert a.loss_events.sum() != b.loss_events.sum() or (
            a.aggregate_goodput_bps != b.aggregate_goodput_bps
        )

    def test_energy_per_gb(self):
        res = self.run_pair(duration=10.0)
        expected = res.total_energy_j / (res.connection_bits.sum() / 8e9)
        assert res.energy_per_gb() == pytest.approx(expected)

    def test_mean_utilization_bounded(self):
        res = self.run_pair()
        assert np.all(res.mean_utilization >= 0)
        assert np.all(res.mean_utilization <= 1.0)

    def test_requires_finalized_network(self):
        net = FluidNetwork(tiny_topology())
        net.add_connection("a", "b", "lia", n_subflows=1)
        with pytest.raises(ConfigurationError):
            FluidSimulation(net)

    def test_invalid_dt_rejected(self):
        net = FluidNetwork(tiny_topology())
        net.add_connection("a", "b", "lia", n_subflows=1)
        net.finalize()
        with pytest.raises(ConfigurationError):
            FluidSimulation(net, dt=0)

    def test_rtt_floor_respected(self):
        res = self.run_pair()
        assert np.all(res.mean_rtt >= 0.008 * 0.999)

    @pytest.mark.parametrize("fast_path", [True, False])
    def test_energy_trailing_window_clamped(self, fast_path):
        # 15 steps sampled every 10: windows are [10, 5]. The trailing
        # partial window used to be billed as a full 10 steps.
        net = FluidNetwork(tiny_topology())
        net.add_connection("a", "b", "reno", n_subflows=1)
        net.finalize()
        dt = 0.002
        sim = FluidSimulation(net, dt=dt, seed=1, energy_sample_every=10,
                              fast_path=fast_path)
        res = sim.run(15 * dt)
        assert len(res.sample_power_w) == 2
        expected = sum(p * dt * w for p, w in zip(res.sample_power_w, [10, 5]))
        assert res.total_energy_j == pytest.approx(expected, rel=1e-12)
        overcounted = sum(p * dt * 10 for p in res.sample_power_w)
        assert res.total_energy_j < overcounted

    def test_energy_unchanged_when_steps_divide_evenly(self):
        # Sanity guard for figure byte-stability: the clamp is a no-op
        # when n_steps is a multiple of energy_sample_every.
        net = FluidNetwork(tiny_topology())
        net.add_connection("a", "b", "reno", n_subflows=1)
        net.finalize()
        dt = 0.002
        sim = FluidSimulation(net, dt=dt, seed=1, energy_sample_every=10)
        res = sim.run(20 * dt)
        expected = sum(p * dt * 10 for p in res.sample_power_w)
        assert res.total_energy_j == pytest.approx(expected, rel=1e-12)


class TestCrossEngineConsistency:
    """Packet-level and fluid engines should agree on simple equilibria."""

    def test_single_bottleneck_goodput_agreement(self):
        from repro.net import Network
        from repro.net.queues import DropTailQueue

        # Packet level.
        pnet = Network(seed=1)
        a, b = pnet.add_host("a"), pnet.add_host("b")
        s = pnet.add_switch("s")
        pnet.link(a, s, rate_bps=mbps(100), delay=ms(2),
                  queue_factory=lambda: DropTailQueue(limit_packets=100))
        pnet.link(s, b, rate_bps=mbps(100), delay=ms(2),
                  queue_factory=lambda: DropTailQueue(limit_packets=100))
        conn = pnet.tcp_connection(pnet.route([a, s, b]), total_bytes=None)
        conn.start()
        pnet.run(until=20.0)
        packet_goodput = conn.aggregate_goodput_bps(elapsed=20.0)

        # Fluid.
        fnet = FluidNetwork(tiny_topology())
        fnet.add_connection("a", "b", "reno", n_subflows=1)
        fnet.finalize()
        fluid_goodput = FluidSimulation(fnet, dt=0.002, seed=1).run(20.0).aggregate_goodput_bps

        assert packet_goodput == pytest.approx(fluid_goodput, rel=0.25)
