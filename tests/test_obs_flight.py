"""Flight recorder tests: ring semantics, triggers, dumps, ambient hook."""

import json

import pytest

import repro.obs as obs
from repro.obs import FlightRecorder
from repro.obs.flight import FLIGHT_SCHEMA


class FakeClock:
    def __init__(self, t0=1000.0):
        self.t = t0

    def __call__(self):
        return self.t


def test_record_assigns_monotonic_seq_and_counts_kinds():
    fr = FlightRecorder(clock=FakeClock())
    a = fr.record("loss", path=0)
    b = fr.record("rto", path=1)
    c = fr.record("loss", path=0)
    assert (a.seq, b.seq, c.seq) == (1, 2, 3)
    assert fr.last_seq == 3
    assert fr.counts == {"loss": 2, "rto": 1}
    assert fr.recorded == 3


def test_ring_capacity_drops_oldest():
    fr = FlightRecorder(capacity=2, clock=FakeClock())
    for i in range(5):
        fr.record("e", i=i)
    events = fr.events()
    assert [e.seq for e in events] == [4, 5]
    assert fr.dropped == 3


def test_events_since_and_kind_filter_and_limit():
    fr = FlightRecorder(clock=FakeClock())
    for i in range(6):
        fr.record("loss" if i % 2 == 0 else "rto", i=i)
    assert [e.seq for e in fr.events(since=4)] == [5, 6]
    assert all(e.kind == "rto" for e in fr.events(kinds={"rto"}))
    assert [e.seq for e in fr.events(limit=2)] == [5, 6]


def test_snapshot_document_shape():
    fr = FlightRecorder(clock=FakeClock())
    fr.record("loss", conn=7)
    doc = fr.snapshot()
    assert doc["schema"] == FLIGHT_SCHEMA
    assert doc["last_seq"] == 1
    assert doc["counts"] == {"loss": 1}
    assert doc["events"][0]["kind"] == "loss"
    assert doc["events"][0]["conn"] == 7


def test_dump_writes_header_then_events(tmp_path):
    fr = FlightRecorder(clock=FakeClock())
    fr.record("loss", conn=1, path=0)
    fr.record("rto", conn=1, path=1)
    out = fr.dump(tmp_path / "flight.jsonl", reason="test")
    lines = [json.loads(line) for line in out.read_text().splitlines()]
    assert lines[0]["schema"] == FLIGHT_SCHEMA
    assert lines[0]["reason"] == "test"
    assert lines[0]["counts"] == {"loss": 1, "rto": 1}
    assert [rec["kind"] for rec in lines[1:]] == ["loss", "rto"]
    assert fr.dumps == 1


def test_dump_without_path_raises():
    with pytest.raises(ValueError):
        FlightRecorder().dump()


def test_threshold_auto_dumps_exactly_once(tmp_path):
    path = tmp_path / "auto.jsonl"
    fr = FlightRecorder(clock=FakeClock(), dump_path=path,
                        dump_thresholds={"rto": 2})
    fr.record("rto")
    assert not path.exists()
    fr.record("rto")
    assert path.exists()
    first = path.read_text()
    fr.record("rto")  # already tripped: no second dump
    assert path.read_text() == first
    assert fr.dumps == 1


def test_dump_on_crash_dumps_and_reraises(tmp_path):
    path = tmp_path / "crash.jsonl"
    fr = FlightRecorder(clock=FakeClock())
    with pytest.raises(RuntimeError):
        with fr.dump_on_crash(path):
            fr.record("loss")
            raise RuntimeError("boom")
    header = json.loads(path.read_text().splitlines()[0])
    assert header["reason"] == "crash"


def test_record_event_is_noop_without_session():
    assert obs.record_event("loss", path=0) is None


def test_record_event_routes_to_ambient_flight_recorder():
    with obs.session() as s:
        assert obs.record_event("loss") is None  # no recorder attached yet
        s.attach_flight()
        event = obs.record_event("loss", path=3)
        assert event is not None
        assert s.flight.counts == {"loss": 1}
        assert s.flight.events()[0].fields == {"path": 3}


def test_attach_flight_is_get_or_create():
    s = obs.ObsSession()
    first = s.attach_flight(capacity=16)
    assert s.attach_flight() is first
    explicit = FlightRecorder(capacity=4)
    assert s.attach_flight(explicit) is explicit
