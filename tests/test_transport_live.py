"""Live telemetry acceptance: a real lossy transfer observed end to end.

A loopback fetch under injected loss must light up the whole live
layer: non-empty per-subflow cwnd/throughput/energy series on
``/series``, a valid Prometheus exposition on ``/metrics.prom`` that
parses back, loss/RTO flight events on ``/events`` and in a dump file,
SSE frames on ``/stream``, and the dashboard page itself.
"""

from __future__ import annotations

import asyncio
import json

from repro.obs.prom import parse_exposition, validate_exposition
from repro.transport.client import fetch
from repro.transport.server import TransportServer

TRANSFER_BYTES = 512 * 1024


async def _http_get(port: int, path: str) -> "tuple[bytes, str]":
    """One in-loop GET (urllib would block the event loop the server
    itself runs on); returns (body, content-type)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"GET {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode())
    await writer.drain()
    raw = await asyncio.wait_for(reader.read(-1), timeout=10)
    writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    content_type = ""
    for line in head.split(b"\r\n"):
        if line.lower().startswith(b"content-type:"):
            content_type = line.split(b":", 1)[1].strip().decode()
    return body, content_type


async def _lossy_observed_transfer(tmp_path):
    dump_path = tmp_path / "flight.jsonl"
    server = TransportServer(
        host="127.0.0.1", base_port=0, n_ports=2,
        loss_rate=0.05, loss_seed=7, metrics_port=0,
        record_interval=0.05, flight_dump_path=str(dump_path))
    ports = await server.start()
    try:
        result = await fetch("127.0.0.1", ports, controller="dts",
                             total_bytes=TRANSFER_BYTES, timeout=60.0)
        assert result.bytes_received >= TRANSFER_BYTES
        await asyncio.sleep(0.2)  # a couple more recorder samples

        # --- /series: per-subflow cwnd/throughput + energy, with points
        body, _ = await _http_get(server.metrics_port, "/series")
        doc = json.loads(body)
        names = doc["series"]
        for needle in (".p0.cwnd", ".p1.cwnd", ".p0.throughput_bps",
                       ".energy_j"):
            matches = [n for n in names if n.endswith(needle)]
            assert matches, f"no series ending {needle}: {sorted(names)}"
            assert names[matches[0]]["points"], f"{needle} series empty"
        cwnd_series = next(n for n in names if n.endswith(".p0.cwnd"))
        assert names[cwnd_series]["kind"] == "gauge"
        assert names[cwnd_series]["updated_unix"] > 0

        # --- /metrics.prom: valid exposition, parses back
        body, content_type = await _http_get(server.metrics_port,
                                             "/metrics.prom")
        text = body.decode()
        assert content_type.startswith("text/plain")
        assert validate_exposition(text) == []
        samples = parse_exposition(text)
        cwnd_metrics = [n for n in samples if n.endswith("_p0_cwnd")]
        assert cwnd_metrics and samples[cwnd_metrics[0]][0][1] > 0
        assert any(n.endswith("hellos_total") for n in samples)

        # --- /events: injected loss produced loss (and recovery) events
        body, _ = await _http_get(server.metrics_port, "/events")
        events_doc = json.loads(body)
        assert events_doc["counts"].get("loss", 0) > 0
        assert events_doc["counts"].get("conn_start") == 1
        assert events_doc["counts"].get("conn_done") == 1
        assert events_doc["counts"].get("path_up") == 2
        loss_events = [e for e in events_doc["events"] if e["kind"] == "loss"]
        assert loss_events and {"conn", "path", "total"} <= set(loss_events[0])

        # --- /dashboard: the self-contained page
        body, content_type = await _http_get(server.metrics_port, "/dashboard")
        assert content_type.startswith("text/html")
        page = body.decode()
        assert "EventSource" in page and "canvas" in page

        # --- /stream: one SSE frame arrives and decodes
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", server.metrics_port)
        writer.write(b"GET /stream HTTP/1.1\r\nHost: t\r\n\r\n")
        await writer.drain()
        header = await asyncio.wait_for(reader.readuntil(b"\r\n\r\n"),
                                        timeout=10)
        assert b"text/event-stream" in header
        frame_raw = await asyncio.wait_for(reader.readuntil(b"\n\n"),
                                           timeout=10)
        frame = json.loads(frame_raw.split(b"data: ", 1)[1])
        assert "latest" in frame and frame["latest"]
        # stop() must not hang on the still-open stream (3.12 wait_closed)
        await asyncio.wait_for(server.stop(), timeout=10)
        writer.close()

        # --- flight dump: explicit dump carries the loss/RTO history
        server.flight.dump(dump_path, reason="test")
        lines = [json.loads(line)
                 for line in dump_path.read_text().splitlines()]
        assert lines[0]["schema"] == "repro.obs.flight/1"
        kinds = {rec["kind"] for rec in lines[1:]}
        assert "loss" in kinds
    finally:
        await server.stop()  # idempotent


def test_lossy_transfer_lights_up_live_telemetry(tmp_path):
    asyncio.run(_lossy_observed_transfer(tmp_path))


def test_recording_disabled_when_interval_zero():
    async def run():
        server = TransportServer(host="127.0.0.1", n_ports=1,
                                 metrics_port=0, record_interval=0.0)
        await server.start()
        try:
            assert server._record_task is None
            body, _ = await _http_get(server.metrics_port, "/series")
            assert json.loads(body)["samples_taken"] == 0
        finally:
            await server.stop()

    asyncio.run(run())


def test_client_metrics_include_flight_events():
    async def run():
        server = TransportServer(host="127.0.0.1", n_ports=1,
                                 metrics_port=None, record_interval=0.0)
        ports = await server.start()
        try:
            result = await fetch("127.0.0.1", ports, controller="lia",
                                 total_bytes=64 * 1024, timeout=30.0,
                                 metrics_port=0)
            assert result.bytes_received >= 64 * 1024
        finally:
            await server.stop()

    asyncio.run(run())
