"""Energy-price (Eqs. 6-9) tests."""

import numpy as np
import pytest

from repro.core.energy_price import (
    EnergyPriceConfig,
    per_ack_window_drain,
    phi,
    price_gradient,
    utility_ep,
)
from repro.errors import ModelError


class TestConfig:
    def test_defaults(self):
        cfg = EnergyPriceConfig()
        assert cfg.kappa > 0
        assert cfg.rho > 0

    def test_negative_parameters_rejected(self):
        with pytest.raises(ModelError):
            EnergyPriceConfig(kappa=-1)


class TestUtility:
    def test_no_excess_no_traffic(self):
        assert utility_ep([0, 0], 5.0, [0, 0], rho=1.0) == 0.0

    def test_queue_excess_counts(self):
        # Queues 8 and 3 with target 5: excess 3.
        assert utility_ep([8, 3], 5.0, [0, 0], rho=1.0) == pytest.approx(3.0)

    def test_traffic_term(self):
        assert utility_ep([0, 0], 5.0, [10, 20], rho=0.5) == pytest.approx(15.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ModelError):
            utility_ep([1], 5.0, [1, 2], rho=1.0)


class TestPhi:
    def test_gradient_composition(self):
        cfg = EnergyPriceConfig(kappa=1.0, rho=2.0, gamma=3.0)
        grad = price_gradient(np.array([1.0, 0.0]), np.array([4.0, 2.0]), cfg)
        assert list(grad) == pytest.approx([3 + 8, 0 + 4])

    def test_phi_scales_with_rate_squared(self):
        cfg = EnergyPriceConfig(kappa=0.1, rho=1.0, gamma=0.0)
        x = np.array([10.0, 20.0])
        hops = np.array([1.0, 1.0])
        over = np.zeros(2)
        values = phi(x, over, hops, cfg)
        assert values[1] == pytest.approx(4 * values[0])

    def test_per_ack_drain_linear_in_window(self):
        cfg = EnergyPriceConfig(kappa=0.01, rho=1.0, gamma=0.0)
        w = np.array([10.0, 30.0])
        hops = np.array([2.0, 2.0])
        over = np.zeros(2)
        drain = per_ack_window_drain(w, over, hops, cfg)
        assert drain[1] == pytest.approx(3 * drain[0])
        assert drain[0] == pytest.approx(0.01 * 2.0 * 10.0)

    def test_zero_kappa_means_zero_phi(self):
        cfg = EnergyPriceConfig(kappa=0.0)
        assert list(phi(np.array([5.0]), np.array([1.0]), np.array([3.0]), cfg)) == [0.0]
