"""Workload generator tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.net.network import Network
from repro.units import mbps, ms
from repro.workloads import (
    NullSink,
    ParetoBurstSource,
    random_permutation_pairs,
    staggered_bulk_transfers,
)


def burst_network():
    net = Network(seed=1)
    a, b = net.add_host("a"), net.add_host("b")
    net.link(a, b, rate_bps=mbps(100), delay=ms(1))
    return net, net.route([a, b])


class TestParetoBursts:
    def test_emits_packets_during_bursts(self):
        net, route = burst_network()
        src = ParetoBurstSource(net.sim, route, rate_bps=mbps(10),
                                mean_interval=0.5, mean_duration=0.5)
        src.start()
        net.run(until=20.0)
        assert src.packets_sent > 0
        # A handful of packets may still be in flight at the cutoff.
        assert src.packets_sent - 5 <= src.sink.packets <= src.packets_sent

    def test_rate_respected_during_on_periods(self):
        net, route = burst_network()
        src = ParetoBurstSource(net.sim, route, rate_bps=mbps(10),
                                mean_interval=0.01, mean_duration=100.0)
        src.start()
        net.run(until=10.0)
        # Essentially always ON: ~10 Mbps of 1500 B packets.
        expected = 10e6 * 10 / (1500 * 8)
        assert src.packets_sent == pytest.approx(expected, rel=0.2)

    def test_off_periods_produce_silence(self):
        net, route = burst_network()
        src = ParetoBurstSource(net.sim, route, rate_bps=mbps(10),
                                mean_interval=1000.0, mean_duration=0.1)
        src.start()
        net.run(until=5.0)
        assert src.packets_sent == 0  # first burst far in the future

    def test_burst_count_roughly_matches_cadence(self):
        net, route = burst_network()
        src = ParetoBurstSource(net.sim, route, rate_bps=mbps(1),
                                mean_interval=1.0, mean_duration=0.5)
        src.start()
        net.run(until=100.0)
        # ~100 / (1.0 + 0.5) cycles expected.
        assert 30 <= src.bursts_generated <= 130

    def test_cannot_start_twice(self):
        net, route = burst_network()
        src = ParetoBurstSource(net.sim, route, rate_bps=mbps(1))
        src.start()
        with pytest.raises(ConfigurationError):
            src.start()

    def test_invalid_rate_rejected(self):
        net, route = burst_network()
        with pytest.raises(ConfigurationError):
            ParetoBurstSource(net.sim, route, rate_bps=0)

    def test_invalid_shape_rejected(self):
        net, route = burst_network()
        with pytest.raises(ConfigurationError):
            ParetoBurstSource(net.sim, route, rate_bps=mbps(1), pareto_shape=1.0)

    def test_mean_burst_duration_approximate(self):
        net, route = burst_network()
        src = ParetoBurstSource(net.sim, route, rate_bps=mbps(1),
                                mean_interval=0.5, mean_duration=2.0)
        durations = [src._next_on_period() for _ in range(4000)]
        assert np.mean(durations) == pytest.approx(2.0, rel=0.25)

    def test_null_sink_counts(self):
        sink = NullSink()

        class P:
            size_bytes = 100

        sink.receive(P())
        sink.receive(P())
        assert sink.packets == 2
        assert sink.bytes == 200


class TestPermutation:
    def test_derangement(self):
        hosts = [f"h{i}" for i in range(50)]
        pairs = random_permutation_pairs(hosts, np.random.default_rng(0))
        assert all(src != dst for src, dst in pairs)

    def test_every_host_sends_once_receives_once(self):
        hosts = [f"h{i}" for i in range(20)]
        pairs = random_permutation_pairs(hosts, np.random.default_rng(1))
        assert sorted(s for s, _ in pairs) == sorted(hosts)
        assert sorted(d for _, d in pairs) == sorted(hosts)

    def test_needs_two_hosts(self):
        with pytest.raises(ConfigurationError):
            random_permutation_pairs(["only"], np.random.default_rng(0))

    @given(st.integers(min_value=2, max_value=40), st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_property_always_a_derangement(self, n, seed):
        hosts = [f"h{i}" for i in range(n)]
        pairs = random_permutation_pairs(hosts, np.random.default_rng(seed))
        assert all(s != d for s, d in pairs)
        assert len({d for _, d in pairs}) == n


class TestBulk:
    def test_staggered_start_and_completion(self):
        net = Network(seed=2)
        a, b = net.add_host("a"), net.add_host("b")
        s = net.add_switch("s")
        net.link(a, s, rate_bps=mbps(100), delay=ms(2))
        net.link(s, b, rate_bps=mbps(100), delay=ms(2))
        route = net.route([a, s, b])
        conns = [net.tcp_connection(route, total_bytes=200_000) for _ in range(3)]
        transfer_set = staggered_bulk_transfers(net, conns)
        net.run_until_complete(conns, timeout=30)
        assert transfer_set.all_completed
        assert transfer_set.makespan() is not None
        assert len(transfer_set.goodputs_bps()) == 3

    def test_negative_jitter_rejected(self):
        net = Network()
        with pytest.raises(ConfigurationError):
            staggered_bulk_transfers(net, [], jitter=-1)
