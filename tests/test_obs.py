"""repro.obs tests: registry semantics, tracing, manifests, CLI wiring."""

import json
import tracemalloc

import pytest

import repro.obs as obs
from repro.obs import (
    MANIFEST_SCHEMA,
    Counter,
    Histogram,
    MetricsRegistry,
    NULL_TRACER,
    RunManifest,
    Tracer,
    geometric_buckets,
)


# ----------------------------------------------------------------- registry

def test_counter_and_gauge_basics():
    reg = MetricsRegistry()
    c = reg.counter("c")
    c.inc()
    c.inc(4)
    assert c.value == 5
    g = reg.gauge("g")
    g.set(3.5)
    g.set(-1.0)
    assert g.value == -1.0
    assert len(reg) == 2


def test_counter_rejects_negative():
    with pytest.raises(ValueError):
        MetricsRegistry().counter("c").inc(-1)


def test_registry_get_or_create_returns_same_instrument():
    reg = MetricsRegistry()
    assert reg.counter("x") is reg.counter("x")
    assert reg.histogram("h") is reg.histogram("h")


def test_registry_kind_mismatch_raises():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")
    with pytest.raises(TypeError):
        reg.histogram("x")


def test_geometric_buckets():
    assert list(geometric_buckets(1.0, 8.0)) == [1.0, 2.0, 4.0, 8.0]
    assert list(geometric_buckets(1.0, 100.0, 10.0)) == [1.0, 10.0, 100.0]


def test_histogram_bucketing_and_stats():
    h = Histogram("h", buckets=[1.0, 2.0, 4.0])
    for v in (0.5, 1.0, 3.0, 100.0):
        h.observe(v)
    snap = h.snapshot_value()
    assert snap["count"] == 4
    assert snap["sum"] == pytest.approx(104.5)
    assert snap["min"] == 0.5 and snap["max"] == 100.0
    # bounds are upper-inclusive; the 4th cell is the overflow bucket
    assert snap["counts"] == [2, 0, 1, 1]
    assert len(snap["counts"]) == len(snap["buckets"]) + 1


def test_snapshot_is_json_serializable_and_sorted():
    reg = MetricsRegistry()
    reg.counter("b").inc()
    reg.gauge("a").set(1)
    reg.histogram("c").observe(2)
    snap = reg.snapshot()
    assert list(snap) == sorted(snap)
    json.dumps(snap)


def test_registry_write_jsonl_round_trip(tmp_path):
    reg = MetricsRegistry()
    reg.counter("runs").inc(3)
    reg.histogram("lat").observe(0.5)
    path = tmp_path / "m.jsonl"
    assert reg.write_jsonl(path) == 2
    records = [json.loads(line) for line in path.read_text().splitlines()]
    by_name = {r["name"]: r for r in records}
    assert by_name["runs"]["kind"] == "counter"
    assert by_name["runs"]["value"] == 3
    assert by_name["lat"]["kind"] == "histogram"
    assert by_name["lat"]["count"] == 1


# ------------------------------------------------------------------ tracing

def test_span_nesting_depths():
    tr = Tracer()
    with tr.span("outer"):
        with tr.span("inner"):
            tr.instant("tick", n=1)
    names = [(r["name"], r["type"], r["depth"]) for r in tr.records]
    # spans are recorded at exit: innermost first
    assert ("tick", "instant", 2) in names
    assert ("inner", "span", 1) in names
    assert ("outer", "span", 0) in names
    outer = next(r for r in tr.records if r["name"] == "outer")
    inner = next(r for r in tr.records if r["name"] == "inner")
    assert outer["dur"] >= inner["dur"] >= 0


def test_span_records_args_and_survives_exceptions():
    tr = Tracer()
    with pytest.raises(RuntimeError):
        with tr.span("job", attempt=2):
            raise RuntimeError("boom")
    (rec,) = tr.records
    assert rec["name"] == "job" and rec["args"] == {"attempt": 2}


def test_tracer_caps_events():
    tr = Tracer(max_events=3)
    for i in range(10):
        tr.instant("e", i=i)
    assert len(tr.records) == 3
    assert tr.dropped == 7


def test_chrome_export_parses_back(tmp_path):
    tr = Tracer()
    with tr.span("sim.run", until=1.0):
        tr.instant("sim.dispatch", queue_depth=5)
        with tr.span("sim.step"):
            pass
    path = tmp_path / "trace.json"
    tr.export_chrome(path)
    doc = json.loads(path.read_text())
    assert doc["displayTimeUnit"] == "ms"
    events = doc["traceEvents"]
    phases = {e["ph"] for e in events}
    assert {"X", "i", "M"} <= phases
    complete = [e for e in events if e["ph"] == "X"]
    assert {e["name"] for e in complete} == {"sim.run", "sim.step"}
    for e in complete:
        assert e["dur"] >= 0 and e["ts"] >= 0
    instant = next(e for e in events if e["ph"] == "i")
    assert instant["s"] == "t"
    assert instant["args"]["queue_depth"] == 5


def test_jsonl_export(tmp_path):
    tr = Tracer()
    with tr.span("a"):
        tr.instant("b")
    path = tmp_path / "t.jsonl"
    assert tr.export_jsonl(path) == 2
    records = [json.loads(line) for line in path.read_text().splitlines()]
    assert {r["type"] for r in records} == {"span", "instant"}


def test_null_tracer_is_allocation_free():
    # Every span is the same object and nothing is retained.
    s1 = NULL_TRACER.span("x", a=1)
    s2 = NULL_TRACER.span("y")
    assert s1 is s2
    with s1:
        pass
    assert NULL_TRACER.instant("z") is None
    assert not NULL_TRACER.enabled

    tracemalloc.start()
    before = tracemalloc.take_snapshot()
    for i in range(1000):
        with NULL_TRACER.span("hot", i=i):
            NULL_TRACER.instant("tick", i=i)
    after = tracemalloc.take_snapshot()
    tracemalloc.stop()
    grown = sum(s.size_diff for s in after.compare_to(before, "lineno")
                if s.size_diff > 0)
    assert grown < 16 * 1024  # no per-iteration retention


# ----------------------------------------------------------------- sessions

def test_session_is_ambient_and_scoped():
    assert obs.active_session() is None
    with obs.session(trace=True, label="t") as s:
        assert obs.active_session() is s
        assert obs.current_tracer() is s.tracer
        assert s.tracer.enabled
        with pytest.raises(RuntimeError):
            obs.start_session()
    assert obs.active_session() is None
    assert obs.current_tracer() is NULL_TRACER


def test_engines_share_session_registry():
    from repro.net.events import Simulator

    with obs.session() as s:
        sim = Simulator(seed=1)
        sim.schedule(0.0, lambda: None)
        sim.run()
    assert sim.metrics is s.registry
    assert s.registry.snapshot()["engine.events_processed"] == 1
    assert sim.events_processed == 1  # compat property reads the registry

    # Outside a session: a private registry per engine.
    sim2 = Simulator(seed=1)
    assert sim2.metrics is not s.registry


def test_annotate_without_session_is_noop():
    obs.annotate(seed=1)  # must not raise
    with obs.session() as s:
        obs.annotate(seed=7)
    assert s.annotations["seed"] == 7


# ---------------------------------------------------------------- manifests

def test_manifest_round_trip(tmp_path):
    m = RunManifest.capture(label="t", spec_hash="ab" * 32, seed=3,
                            metrics={"engine.steps_taken": 40},
                            annotations={"duration": 1.0})
    path = tmp_path / "run.manifest.json"
    m.write(path)
    again = RunManifest.load(path)
    assert again == m
    assert again.schema == MANIFEST_SCHEMA
    assert again.seed == 3
    assert again.metrics["engine.steps_taken"] == 40


def test_manifest_rejects_wrong_schema(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema": "something/else"}))
    with pytest.raises(ValueError):
        RunManifest.load(path)


def test_campaign_writes_manifest_next_to_cache_entry(tmp_path):
    from repro.campaign import CampaignExecutor, ResultCache, RunSpec

    cache = ResultCache(tmp_path)
    spec = RunSpec(topology="bcube", duration=0.4, dt=0.01, seed=1)
    (outcome,) = CampaignExecutor(jobs=1, cache=cache).run([spec])
    assert outcome.ok
    assert "obs" in outcome.payload
    assert outcome.metrics["steps_taken"] == int(
        outcome.payload["obs"]["engine.steps_taken"])
    entry = cache.path_for(spec)
    manifest = RunManifest.load(entry.with_name(entry.stem + ".manifest.json"))
    assert manifest.spec_hash == spec.content_hash()
    assert manifest.seed == 1
    assert cache.size() == 1  # the manifest is not a cache entry


# ---------------------------------------------------------------------- CLI

def test_fig08_trace_cli_regression(tmp_path, capsys, monkeypatch):
    """`repro fig08 --trace --metrics` produces loadable artifacts."""
    from repro import cli
    from repro.experiments import fig08_trace

    real_run = fig08_trace.run
    monkeypatch.setattr(fig08_trace, "run",
                        lambda **kw: real_run(duration=3.0, seed=3,
                                              bin_width=1.0))
    trace = tmp_path / "fig08.trace.json"
    metrics = tmp_path / "fig08.metrics.jsonl"
    rc = cli.main(["fig08", "--trace", str(trace), "--metrics", str(metrics)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "fig08 done" in out

    doc = json.loads(trace.read_text())
    names = {e["name"] for e in doc["traceEvents"]}
    assert "figure.fig08" in names
    assert "sim.run" in names
    assert "energy.sample" in names

    lines = [json.loads(line) for line in metrics.read_text().splitlines()]
    by_name = {r["name"]: r for r in lines}
    assert by_name["engine.events_processed"]["value"] > 0
    assert by_name["mptcp.acks"]["value"] > 0
    assert "dts.epsilon" in by_name  # the DTS leg records Eq. (5) epsilons

    manifest = RunManifest.load(str(trace) + ".manifest.json")
    assert manifest.annotations["seed"] == 3   # fig08 annotates its params

    rc = cli.main(["obs", "report", str(trace), str(metrics),
                   str(trace) + ".manifest.json"])
    assert rc == 0
    report = capsys.readouterr().out
    assert "chrome-trace" in report
    assert "metrics-jsonl" in report
    assert "manifest" in report


def test_obs_report_rejects_garbage(tmp_path, capsys):
    from repro import cli

    bad = tmp_path / "bad.bin"
    bad.write_text("not json at all")
    assert cli.main(["obs", "report", str(bad)]) == 2


def test_obs_report_skips_empty_file_and_renders_rest(tmp_path, capsys):
    """An empty artifact is skipped with a notice; other files still render."""
    from repro import cli

    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    reg = MetricsRegistry()
    reg.counter("ok.runs").inc(2)
    good = tmp_path / "good.jsonl"
    reg.write_jsonl(good)

    assert cli.main(["obs", "report", str(empty), str(good)]) == 0
    out = capsys.readouterr().out
    assert "(empty)" in out and "skipped" in out
    assert "ok.runs" in out  # the healthy file still summarized


def test_obs_report_tolerates_truncated_jsonl(tmp_path, capsys):
    """A truncated tail (killed run) keeps the parseable records.

    A newline-*terminated* garbage line is warned about; the torn
    trailing line is a concurrent append in flight and skipped silently
    (tests/test_obs_tail.py pins the split itself).
    """
    from repro import cli

    reg = MetricsRegistry()
    reg.counter("runs").inc(5)
    reg.gauge("depth").set(3)
    path = tmp_path / "trunc.jsonl"
    reg.write_jsonl(path)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write("garbage\n")  # a real malformed line
        fh.write('{"name": "cut-off", "kind": "coun')  # truncated mid-write

    assert cli.main(["obs", "report", str(path)]) == 0
    out = capsys.readouterr().out
    assert "runs" in out and "depth" in out
    assert "skipped 1 malformed line" in out  # garbage, not the torn tail


# -------------------------------------------------------------- percentiles

def test_histogram_percentiles_interpolate_within_buckets():
    h = Histogram("h", buckets=(10.0, 20.0, 30.0))
    for v in (10.0, 12.0, 14.0, 16.0, 18.0,    # second bucket (10, 20]
              22.0, 24.0, 26.0, 28.0, 30.0):   # third bucket (20, 30]
        h.observe(v)
    p50, p95 = h.percentiles(50, 95)
    # Half the mass sits in (10, 20], so p50 lands at that bucket's top.
    assert 18.0 <= p50 <= 21.0
    assert 28.0 <= p95 <= 30.0
    assert h.percentile(0) == pytest.approx(10.0)   # clamped to observed min
    assert h.percentile(100) == pytest.approx(30.0)  # ... and max


def test_histogram_percentiles_clamp_single_bucket_to_min_max():
    h = Histogram("h", buckets=(1000.0,))
    for v in (5.0, 6.0, 7.0):
        h.observe(v)
    p50 = h.percentile(50)
    assert 5.0 <= p50 <= 7.0  # not dragged to the 1000.0 bucket bound


def test_histogram_percentiles_empty_and_invalid():
    h = Histogram("h")
    assert h.percentiles(50, 99) == [0.0, 0.0]
    h.observe(1.0)
    with pytest.raises(ValueError):
        h.percentile(101)
    with pytest.raises(ValueError):
        h.percentile(-1)


def test_percentiles_from_snapshot_record_match_live_histogram():
    from repro.obs.metrics import percentiles_from_counts

    h = Histogram("h", buckets=geometric_buckets(1.0, 64.0))
    for v in range(1, 50):
        h.observe(float(v))
    snap = h.snapshot_value()
    from_snapshot = percentiles_from_counts(
        snap["buckets"], snap["counts"], snap["min"], snap["max"], (50, 95))
    assert from_snapshot == h.percentiles(50, 95)


def test_obs_report_metrics_table_shows_percentiles(tmp_path, capsys):
    from repro import cli

    reg = MetricsRegistry()
    hist = reg.histogram("lat", buckets=geometric_buckets(0.001, 8.0))
    for v in (0.01, 0.02, 0.04, 0.3, 2.0):
        hist.observe(v)
    path = tmp_path / "m.jsonl"
    reg.write_jsonl(path)
    assert cli.main(["obs", "report", str(path)]) == 0
    out = capsys.readouterr().out
    assert "p50" in out and "p95" in out and "p99" in out


def test_manifest_captures_cpu_count():
    m = RunManifest.capture(label="t")
    assert isinstance(m.cpu_count, int) and m.cpu_count >= 1
    # Pre-bench manifests (no cpu_count field) still load.
    data = m.to_json_dict()
    del data["cpu_count"]
    again = RunManifest.from_json_dict(data)
    assert again.cpu_count is None


def test_ambient_session_is_task_local():
    """Two concurrent asyncio tasks each get their own ambient session.

    The ambient-session slot is a ContextVar, so ``obs.session()`` in one
    task must be invisible to the other — the property the real UDP
    transport relies on when serve and fetch share one event loop.
    """
    import asyncio

    async def worker(label, started, release):
        with obs.session(label=label) as s:
            s.registry.counter(f"{label}.n").inc()
            started.set()
            await release.wait()
            active = obs.active_session()
            assert active is s
            assert active.label == label
            return sorted(active.registry.snapshot())

    async def scenario():
        a_started, b_started = asyncio.Event(), asyncio.Event()
        release = asyncio.Event()
        task_a = asyncio.create_task(worker("iso-a", a_started, release))
        task_b = asyncio.create_task(worker("iso-b", b_started, release))
        # Both sessions are open simultaneously before either closes.
        await asyncio.gather(a_started.wait(), b_started.wait())
        assert obs.active_session() is None  # parent context untouched
        release.set()
        return await asyncio.gather(task_a, task_b)

    counters_a, counters_b = asyncio.run(scenario())
    assert counters_a == ["iso-a.n"]
    assert counters_b == ["iso-b.n"]
    assert obs.active_session() is None
