"""Streaming (rate-limited) workload tests."""

import pytest

from repro.errors import ConfigurationError
from repro.net.network import Network
from repro.net.queues import DropTailQueue
from repro.units import mbps, ms
from repro.workloads.streaming import StreamingSupply, attach_streaming_source


def two_path_net(seed=1):
    net = Network(seed=seed)
    a, b = net.add_host("a"), net.add_host("b")
    routes = []
    for i in range(2):
        s = net.add_switch(f"s{i}")
        net.link(a, s, rate_bps=mbps(100), delay=ms(10),
                 queue_factory=lambda: DropTailQueue(limit_packets=100))
        net.link(s, b, rate_bps=mbps(100), delay=ms(10),
                 queue_factory=lambda: DropTailQueue(limit_packets=100))
        routes.append(net.route([a, s, b]))
    return net, routes


def test_stream_respects_bitrate():
    net, routes = two_path_net()
    conn = net.connection(routes, "lia", total_bytes=None)
    attach_streaming_source(conn, bitrate_bps=mbps(8))
    conn.start()
    net.run(until=20.0)
    goodput = conn.aggregate_goodput_bps(elapsed=20.0)
    assert goodput <= mbps(8) * 1.05
    assert goodput >= mbps(8) * 0.75


def test_stream_far_below_capacity_is_lossless():
    net, routes = two_path_net()
    conn = net.connection(routes, "dts", total_bytes=None)
    attach_streaming_source(conn, bitrate_bps=mbps(4))
    conn.start()
    net.run(until=15.0)
    assert conn.total_loss_events() == 0


def test_finite_stream_completes():
    net, routes = two_path_net()
    conn = net.connection(routes, "lia", total_bytes=None)
    attach_streaming_source(conn, bitrate_bps=mbps(20), total_bytes=1_000_000)
    conn.start()
    net.run_until_complete([conn], timeout=60)
    assert conn.completed
    # At 20 Mbps an 8 Mb transfer takes at least 0.4 s (rate-limited).
    assert conn.completion_time >= 0.35


def test_bitrate_above_capacity_saturates_network_instead():
    net, routes = two_path_net()
    conn = net.connection(routes, "lia", total_bytes=None)
    attach_streaming_source(conn, bitrate_bps=mbps(500))
    conn.start()
    net.run(until=10.0)
    goodput = conn.aggregate_goodput_bps(elapsed=10.0)
    assert goodput <= mbps(200) * 1.05  # network capacity, not the app rate


def test_supply_binding_replaces_connection_supply():
    net, routes = two_path_net()
    conn = net.connection(routes, "lia", total_bytes=None)
    supply = attach_streaming_source(conn, bitrate_bps=mbps(8))
    assert conn.supply is supply
    assert all(sf.supply is supply for sf in conn.subflows)


def test_invalid_parameters_rejected():
    net, _ = two_path_net()
    with pytest.raises(ConfigurationError):
        StreamingSupply(net.sim, bitrate_bps=0, segment_bytes=1460)
    with pytest.raises(ConfigurationError):
        StreamingSupply(net.sim, bitrate_bps=mbps(1), segment_bytes=0)


def test_token_bucket_empties_and_refills():
    net, _ = two_path_net()
    supply = StreamingSupply(net.sim, bitrate_bps=mbps(1),
                             segment_bytes=1460, burst_segments=2.0)
    assert supply.take()
    assert supply.take()
    assert not supply.take()  # bucket empty
    net.run(until=1.0)  # ~85 segments/s refill at 1 Mbps
    assert supply.take()
