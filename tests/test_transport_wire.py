"""Wire-codec round-trip and fuzz tests.

The decode path is the trust boundary of the UDP transport: every byte
string a socket hands us must either parse into a segment or raise
:class:`WireError` — anything else (KeyError, struct.error, an infinite
loop) is a remote crash. The fuzz tests below hammer that contract.
"""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transport import wire
from repro.transport.wire import (
    AckSegment,
    ByeSegment,
    DataSegment,
    HelloAckSegment,
    HelloSegment,
    WireError,
    decode,
    encode_ack,
    encode_bye,
    encode_data,
    encode_hello,
    encode_hello_ack,
)

u16 = st.integers(min_value=0, max_value=0xFFFF)
u64 = st.integers(min_value=0, max_value=2**64 - 1)
times = st.floats(min_value=0.0, max_value=1e9, allow_nan=False)


# ------------------------------------------------------------- round trips

@given(conn=u16, path=u16, seq=u64, t=times,
       payload=st.binary(max_size=2000), ecn=st.booleans())
def test_data_round_trip(conn, path, seq, t, payload, ecn):
    seg = decode(encode_data(conn, path, seq, t, payload, ecn_capable=ecn))
    assert isinstance(seg, DataSegment)
    assert (seg.conn_id, seg.path_id, seg.seq) == (conn, path, seq)
    assert seg.sent_time == t
    assert seg.payload == payload
    assert seg.ecn_capable == ecn


@given(conn=u16, path=u16, ack=u64, echo=times,
       sacks=st.lists(u64, max_size=10), ecn=st.booleans())
def test_ack_round_trip(conn, path, ack, echo, sacks, ecn):
    seg = decode(encode_ack(conn, path, ack, echo, sacks, ecn_echo=ecn))
    assert isinstance(seg, AckSegment)
    assert (seg.conn_id, seg.path_id, seg.ack_seq) == (conn, path, ack)
    assert seg.echo_time == echo
    assert seg.sack_seqs == tuple(sacks)
    assert seg.ecn_echo == ecn


@given(conn=u16, path=u16,
       params=st.dictionaries(
           st.text(min_size=1, max_size=10),
           st.one_of(st.integers(-10**9, 10**9), st.text(max_size=20),
                     st.booleans()),
           max_size=8))
def test_hello_round_trip(conn, path, params):
    seg = decode(encode_hello(conn, path, params))
    assert isinstance(seg, HelloSegment)
    assert seg.params == params
    ackseg = decode(encode_hello_ack(conn, path, params))
    assert isinstance(ackseg, HelloAckSegment)
    assert ackseg.params == params


def test_bye_round_trip():
    seg = decode(encode_bye(7, 3))
    assert isinstance(seg, ByeSegment)
    assert (seg.conn_id, seg.path_id) == (7, 3)


# ------------------------------------------------------------------- limits

def test_data_payload_too_large_rejected_at_encode():
    with pytest.raises(WireError):
        encode_data(1, 0, 0, 0.0, b"x" * (wire.MAX_PAYLOAD + 1))


def test_ack_too_many_sacks_rejected_at_encode():
    with pytest.raises(WireError):
        encode_ack(1, 0, 0, 0.0, list(range(256)))


# --------------------------------------------------------------------- fuzz

@given(st.binary(max_size=200))
@settings(max_examples=300)
def test_decode_never_raises_anything_but_wireerror(data):
    try:
        decode(data)
    except WireError:
        pass


@given(st.binary(min_size=1, max_size=300), st.data())
@settings(max_examples=300)
def test_truncating_a_valid_datagram_never_crashes(payload, data):
    datagram = encode_data(5, 1, 42, 1.5, payload)
    cut = data.draw(st.integers(min_value=0, max_value=len(datagram) - 1))
    try:
        seg = decode(datagram[:cut])
    except WireError:
        return
    # The only parse a prefix may produce is an *empty-payload* DATA
    # segment whose header length field happens to match the cut.
    assert isinstance(seg, DataSegment)


@given(st.data())
@settings(max_examples=300)
def test_flipping_one_byte_never_crashes(data):
    datagram = bytearray(encode_ack(9, 2, 1000, 2.5, [1004, 1007]))
    pos = data.draw(st.integers(min_value=0, max_value=len(datagram) - 1))
    val = data.draw(st.integers(min_value=0, max_value=255))
    datagram[pos] = val
    try:
        seg = decode(bytes(datagram))
    except WireError:
        return
    assert isinstance(seg, (AckSegment, DataSegment, HelloSegment,
                            HelloAckSegment, ByeSegment))


def test_bad_magic_and_version_and_type_rejected():
    good = encode_bye(1, 1)
    with pytest.raises(WireError):
        decode(b"\x00" + good[1:])
    with pytest.raises(WireError):
        decode(good[:1] + b"\x63" + good[2:])
    with pytest.raises(WireError):
        decode(good[:2] + b"\x7f" + good[3:])


def test_hello_with_non_object_json_rejected():
    blob = b"[1,2,3]"
    datagram = (struct.pack("!BBBBHH", wire.MAGIC, wire.WIRE_VERSION,
                            wire.TYPE_HELLO, 0, 1, 0)
                + struct.pack("!H", len(blob)) + blob)
    with pytest.raises(WireError):
        decode(datagram)


def test_hello_with_invalid_utf8_rejected():
    blob = b"\xff\xfe{}"
    datagram = (struct.pack("!BBBBHH", wire.MAGIC, wire.WIRE_VERSION,
                            wire.TYPE_HELLO, 0, 1, 0)
                + struct.pack("!H", len(blob)) + blob)
    with pytest.raises(WireError):
        decode(datagram)


def test_length_field_mismatch_rejected():
    datagram = bytearray(encode_data(1, 0, 7, 0.0, b"abcdef"))
    # Header claims 6 payload bytes; strip two so the buffer disagrees.
    with pytest.raises(WireError):
        decode(bytes(datagram[:-2]))


# --------------------------------------------------- forward compatibility

def test_hello_with_unknown_extra_keys_round_trips():
    # The JSON body is the versioning seam: a newer peer may add keys
    # (exactly how traceparent arrived) and an older decoder must keep
    # them intact rather than choke or strip them.
    params = {"controller": "dts", "future_knob": 17,
              "nested": "opaque-to-us", "x-vendor": True}
    seg = decode(encode_hello(3, 1, params))
    assert isinstance(seg, HelloSegment)
    assert seg.params == params
    assert seg.traceparent is None  # unknown keys are not trace context
    ackseg = decode(encode_hello_ack(3, 1, params))
    assert isinstance(ackseg, HelloAckSegment)
    assert ackseg.params == params


def test_hello_traceparent_round_trips_and_validates():
    tp = "00-" + "ab" * 16 + "-" + "cd" * 8 + "-01"
    seg = decode(encode_hello(1, 0, {"controller": "lia"}, traceparent=tp))
    assert seg.traceparent == tp
    assert seg.params["controller"] == "lia"
    ackseg = decode(encode_hello_ack(1, 0, {}, traceparent=tp))
    assert ackseg.traceparent == tp


def test_hello_without_traceparent_key_has_none():
    seg = decode(encode_hello(1, 0, {"controller": "dts"}))
    assert wire.TRACEPARENT_KEY not in seg.params
    assert seg.traceparent is None


@given(params=st.dictionaries(
           st.text(min_size=1, max_size=10),
           st.one_of(st.integers(-10**9, 10**9), st.text(max_size=20),
                     st.booleans()),
           max_size=6),
       tp=st.one_of(
           st.none(),
           st.text(max_size=64),
           st.integers(),
           st.booleans(),
           st.from_regex(r"[0-9a-f]{2}-[0-9a-f]{32}-[0-9a-f]{16}-[0-9a-f]{2}",
                         fullmatch=True)))
@settings(max_examples=300)
def test_traceparent_field_fuzz(params, tp):
    # Whatever lands in the traceparent key — absent, junk, wrong type,
    # or well-formed — decode never raises and .traceparent is either
    # None or a string parse_traceparent accepts.
    from repro.obs.tracing import parse_traceparent

    wire_params = dict(params)
    if tp is not None:
        wire_params[wire.TRACEPARENT_KEY] = tp
    seg = decode(encode_hello(1, 0, wire_params))
    assert isinstance(seg, HelloSegment)
    got = seg.traceparent
    if got is not None:
        assert parse_traceparent(got) is not None
        assert got == tp
