"""Campaign subsystem: specs, cache, executor, telemetry."""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.campaign import (
    CampaignExecutor,
    CampaignTelemetry,
    ResultCache,
    RunSpec,
    engine_throughput,
    execute_run,
    figure_campaign,
    subflow_sweep_campaign,
)
from repro.campaign import cache as cache_mod
from repro.campaign import spec as spec_mod
from repro.errors import ConfigurationError

#: A cheap-but-real fluid run (BCube 64 hosts, 40 integration steps).
FAST = dict(topology="bcube", duration=0.4, dt=0.01)


# ---------------------------------------------------------------------- specs

def test_spec_hash_is_stable_within_process():
    a = RunSpec(n_subflows=4, seed=7, **FAST)
    b = RunSpec(n_subflows=4, seed=7, **FAST)
    assert a.content_hash() == b.content_hash()
    assert len(a.content_hash()) == 64


def test_spec_hash_is_stable_across_processes():
    spec = RunSpec(n_subflows=4, seed=7, **FAST)
    code = (
        "from repro.campaign import RunSpec; "
        f"print(RunSpec(n_subflows=4, seed=7, topology='bcube', "
        f"duration=0.4, dt=0.01).content_hash())"
    )
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run([sys.executable, "-c", code], env=env,
                         capture_output=True, text=True, check=True)
    assert out.stdout.strip() == spec.content_hash()


def test_spec_hash_changes_with_any_field():
    base = RunSpec(**FAST)
    for changes in ({"seed": 2}, {"n_subflows": 2}, {"duration": 0.8},
                    {"dt": 0.02}, {"algorithm": "olia"},
                    {"topology": "vl2"}, {"link_delay": 0.002},
                    {"params": {"initial_window": 5.0}}):
        assert base.replace(**changes).content_hash() != base.content_hash(), changes


def test_spec_json_roundtrip():
    spec = RunSpec(algorithm="olia", n_subflows=3, seed=9, **FAST)
    again = RunSpec.from_json_dict(json.loads(json.dumps(spec.to_json_dict())))
    assert again == spec
    assert again.content_hash() == spec.content_hash()


def test_spec_validation():
    with pytest.raises(ConfigurationError):
        RunSpec(topology="hypercube")
    with pytest.raises(ConfigurationError):
        RunSpec(engine="quantum")
    with pytest.raises(ConfigurationError):
        RunSpec(n_subflows=0)
    with pytest.raises(ConfigurationError):
        RunSpec(duration=-1.0)
    with pytest.raises(ConfigurationError):
        RunSpec.from_json_dict({"banana": 1})


def test_campaign_builders():
    camp = subflow_sweep_campaign(["bcube", "vl2"], subflow_counts=[1, 2],
                                  seeds=[1, 2, 3])
    assert len(camp) == 2 * 2 * 3
    # Topology-major, then count, then seed — the CLI grouping relies on it.
    assert [r.topology for r in camp.runs[:6]] == ["bcube"] * 6
    assert camp.content_hash() == subflow_sweep_campaign(
        ["bcube", "vl2"], subflow_counts=[1, 2], seeds=[1, 2, 3]).content_hash()

    fig = figure_campaign(["fig12"], subflow_counts=[1], seeds=[1])
    assert fig.runs[0].topology == "bcube"
    with pytest.raises(ConfigurationError):
        figure_campaign(["fig09"])


# ---------------------------------------------------------------------- cache

def _payload(spec):
    return {"schema_version": spec_mod.SCHEMA_VERSION,
            "spec_hash": spec.content_hash(),
            "metrics": {"energy_per_gb": 42.0}, "wall_s": 0.1}


def test_cache_roundtrip(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    spec = RunSpec(**FAST)
    assert cache.get(spec) is None
    cache.put(spec, _payload(spec))
    assert cache.get(spec)["metrics"]["energy_per_gb"] == 42.0
    assert cache.stats.hits == 1 and cache.stats.misses == 1
    assert cache.stats.writes == 1 and cache.size() == 1


def test_cache_field_change_misses(tmp_path):
    cache = ResultCache(tmp_path)
    spec = RunSpec(**FAST)
    cache.put(spec, _payload(spec))
    assert cache.get(spec.replace(seed=2)) is None
    assert cache.get(spec.replace(n_subflows=2)) is None
    assert cache.stats.hits == 0


def test_cache_schema_bump_invalidates(tmp_path, monkeypatch):
    cache = ResultCache(tmp_path)
    spec = RunSpec(**FAST)
    cache.put(spec, _payload(spec))
    assert cache.get(spec) is not None
    # An engine-breaking change bumps SCHEMA_VERSION: old entries (same
    # path only if the hash matched, but the hash moves too) must never
    # be served.  Simulate both halves: a stale file under the new
    # version, and the hash movement itself.
    monkeypatch.setattr(spec_mod, "SCHEMA_VERSION", spec_mod.SCHEMA_VERSION + 1)
    monkeypatch.setattr(cache_mod, "SCHEMA_VERSION", cache_mod.SCHEMA_VERSION + 1)
    assert cache.get(spec) is None

    # Force the stale-file half explicitly: entry on disk written under
    # an older schema_version at the exact lookup path.
    path = cache.path_for(spec)
    path.parent.mkdir(parents=True, exist_ok=True)
    entry = {"schema_version": spec_mod.SCHEMA_VERSION - 1,
             "spec_hash": spec.content_hash(), "payload": _payload(spec)}
    path.write_text(json.dumps(entry), encoding="utf-8")
    before = cache.stats.invalidations
    assert cache.get(spec) is None
    assert cache.stats.invalidations == before + 1


def test_cache_corrupted_file_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    spec = RunSpec(**FAST)
    cache.put(spec, _payload(spec))
    path = cache.path_for(spec)

    path.write_text("{not json at all", encoding="utf-8")
    assert cache.get(spec) is None          # no crash

    path.write_text(json.dumps(["wrong", "shape"]), encoding="utf-8")
    assert cache.get(spec) is None

    path.write_text(json.dumps({"schema_version": spec_mod.SCHEMA_VERSION}),
                    encoding="utf-8")
    assert cache.get(spec) is None          # missing keys
    assert cache.stats.invalidations == 3

    cache.put(spec, _payload(spec))         # writable again after corruption
    assert cache.get(spec) is not None


def test_cache_clear(tmp_path):
    cache = ResultCache(tmp_path)
    for seed in (1, 2, 3):
        spec = RunSpec(seed=seed, **FAST)
        cache.put(spec, _payload(spec))
    assert cache.size() == 3
    assert cache.clear() == 3
    assert cache.size() == 0


# ------------------------------------------------------------------- executor

def _specs(n_seeds=2):
    return [RunSpec(n_subflows=nsub, seed=seed, **FAST)
            for nsub in (1, 2) for seed in range(1, n_seeds + 1)]


def test_jobs1_and_jobs4_are_byte_identical():
    specs = _specs()
    serial = CampaignExecutor(jobs=1).run(specs)
    pooled = CampaignExecutor(jobs=4).run(specs)
    assert all(o.ok for o in serial) and all(o.ok for o in pooled)
    for s, p in zip(serial, pooled):
        assert json.dumps(s.metrics, sort_keys=True) == \
            json.dumps(p.metrics, sort_keys=True)
    # Deterministic step counts surface in the payload for telemetry.
    assert serial[0].metrics["steps_taken"] == 40


_BAD_SEED = 999


def _failing_run(spec):
    if spec.seed == _BAD_SEED:
        raise RuntimeError("boom")
    return {"spec_hash": spec.content_hash(), "metrics": {"seed": spec.seed},
            "wall_s": 0.0}


def _flaky_run(spec):
    flag = Path(spec.params["flag"])
    if not flag.exists():
        flag.touch()
        raise RuntimeError("first attempt always fails")
    return {"spec_hash": spec.content_hash(), "metrics": {"seed": spec.seed},
            "wall_s": 0.0}


@pytest.mark.parametrize("jobs", [1, 2])
def test_raising_worker_is_retried_then_reported(jobs):
    specs = [RunSpec(seed=1, **FAST), RunSpec(seed=_BAD_SEED, **FAST),
             RunSpec(seed=2, **FAST)]
    outcomes = CampaignExecutor(jobs=jobs, run_fn=_failing_run).run(specs)
    assert [o.ok for o in outcomes] == [True, False, True]
    bad = outcomes[1]
    assert bad.attempts == 2                       # retried exactly once
    assert "boom" in bad.error
    assert outcomes[0].metrics["seed"] == 1        # campaign not killed
    assert outcomes[2].metrics["seed"] == 2


@pytest.mark.parametrize("jobs", [1, 2])
def test_retry_recovers_a_flaky_worker(tmp_path, jobs):
    spec = RunSpec(seed=5, params={"flag": str(tmp_path / f"flag{jobs}")}, **FAST)
    outcomes = CampaignExecutor(jobs=jobs, run_fn=_flaky_run).run([spec])
    assert outcomes[0].ok
    assert outcomes[0].attempts == 2


def _sleepy_run(spec):
    time.sleep(10.0)
    return {"spec_hash": spec.content_hash(), "metrics": {}, "wall_s": 10.0}


def test_run_timeout_reports_failure():
    spec = RunSpec(seed=1, **FAST)
    outcomes = CampaignExecutor(jobs=2, run_fn=_sleepy_run, run_timeout=0.3,
                                retries=0).run([spec])
    assert not outcomes[0].ok
    assert "timed out" in outcomes[0].error


def _counting_run(spec):
    counter = Path(spec.params["counter"])
    counter.write_text(str(int(counter.read_text() or "0") + 1)
                       if counter.exists() else "1", encoding="utf-8")
    return {"spec_hash": spec.content_hash(), "metrics": {"seed": spec.seed},
            "wall_s": 0.0}


def test_executor_uses_cache_on_second_campaign(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    spec = RunSpec(seed=3, params={"counter": str(tmp_path / "n")}, **FAST)
    ex = CampaignExecutor(jobs=1, cache=cache, run_fn=_counting_run)
    first = ex.run([spec])
    second = ex.run([spec])
    assert first[0].ok and not first[0].cached
    assert second[0].ok and second[0].cached
    assert (tmp_path / "n").read_text() == "1"     # run_fn called exactly once
    assert cache.stats.hits == 1


def test_failed_runs_are_not_cached(tmp_path):
    cache = ResultCache(tmp_path)
    spec = RunSpec(seed=_BAD_SEED, **FAST)
    CampaignExecutor(jobs=1, cache=cache, run_fn=_failing_run).run([spec])
    assert cache.size() == 0


# ------------------------------------------------------------------ telemetry

def test_telemetry_jsonl_log(tmp_path):
    log = tmp_path / "log.jsonl"
    tel = CampaignTelemetry(log_path=log)
    specs = _specs(n_seeds=1)
    outcomes = CampaignExecutor(jobs=1, telemetry=tel,
                                cache=ResultCache(tmp_path / "c")).run(specs)
    assert all(o.ok for o in outcomes)
    records = [json.loads(line) for line in log.read_text().splitlines()]
    events = [r["event"] for r in records]
    assert events[0] == "campaign_started"
    assert events[-1] == "campaign_finished"
    assert events.count("run_completed") == len(specs)
    finished = records[-1]
    assert finished["runs_completed"] == len(specs)
    assert finished["cache_writes"] == len(specs)
    assert finished["wall_s"] > 0
    completed = [r for r in records if r["event"] == "run_completed"]
    assert all(r["steps_per_s"] > 0 for r in completed)
    assert tel.counters["runs_completed"] == len(specs)


def test_engine_throughput_reads_engine_counters():
    from repro.fluidsim import FluidNetwork, FluidSimulation
    from repro.net.events import Simulator

    sim = Simulator(seed=1)
    for i in range(50):
        sim.schedule(i * 0.01, lambda: None)
    sim.run()
    assert sim.events_processed == 50
    assert sim.wall_time_s > 0
    assert sim.events_per_second > 0
    stats = engine_throughput(sim, sim.wall_time_s)
    assert stats["events_per_s"] == pytest.approx(sim.events_per_second)

    from repro.campaign.spec import build_topology
    net = FluidNetwork(build_topology("bcube"), path_seed=1)
    net.add_connection(net.topology.hosts[0], net.topology.hosts[1],
                       "lia", n_subflows=2)
    net.finalize()
    fsim = FluidSimulation(net, dt=0.01, seed=1)
    fsim.run(0.2)
    assert fsim.steps_taken == 20
    assert fsim.steps_per_second > 0
    stats = engine_throughput(fsim, fsim.wall_time_s)
    assert stats["steps_per_s"] == pytest.approx(fsim.steps_per_second)


def test_execute_run_payload_shape():
    payload = execute_run(RunSpec(n_subflows=2, seed=1, **FAST))
    assert payload["spec_hash"] == RunSpec(n_subflows=2, seed=1,
                                           **FAST).content_hash()
    metrics = payload["metrics"]
    assert metrics["energy_per_gb"] > 0
    assert metrics["aggregate_goodput_bps"] > 0
    assert metrics["steps_taken"] == 40
    assert metrics["n_connections"] == 64          # one flow per BCube host
    json.dumps(payload)                            # JSON-serializable


# ------------------------------------------------------------------------ CLI

def test_cli_campaign_smoke(tmp_path, capsys):
    from repro.cli import main

    rc = main(["campaign", "fig12", "--jobs", "1", "--subflows", "1",
               "--seeds", "1", "--duration", "0.4", "--dt", "0.01",
               "--cache-dir", str(tmp_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "topology: bcube" in out
    assert "1 runs, 0 cache hits" in out
    assert (tmp_path / "campaign.log.jsonl").exists()

    rc = main(["campaign", "fig12", "--jobs", "1", "--subflows", "1",
               "--seeds", "1", "--duration", "0.4", "--dt", "0.01",
               "--cache-dir", str(tmp_path)])
    assert rc == 0
    assert "1 cache hits" in capsys.readouterr().out


def test_cli_campaign_rejects_unknown_figure(tmp_path, capsys):
    from repro.cli import main

    rc = main(["campaign", "fig09", "--cache-dir", str(tmp_path)])
    assert rc == 2
    assert "not campaignable" in capsys.readouterr().err


def test_cli_sweep_smoke(tmp_path, capsys):
    from repro.cli import main

    rc = main(["sweep", "--topologies", "bcube", "--subflows", "1", "2",
               "--seeds", "1", "--duration", "0.4", "--dt", "0.01",
               "--jobs", "2", "--cache-dir", str(tmp_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "topology: bcube" in out
    assert "2 runs" in out


def test_paper_scale_campaign_spec():
    from repro.experiments import paper_scale

    camp = paper_scale.fig12_14_campaign()
    assert len(camp) == 3 * 8 * 10
    assert {r.topology for r in camp.runs} == {"bcube", "fattree", "vl2"}
    assert all(r.duration == 1000.0 for r in camp.runs)
    assert all(r.link_delay == paper_scale.PAPER_DC_LINK_DELAY
               for r in camp.runs)


# ------------------------------------------------------- distributed tracing

def _driver_traceparent():
    from repro.obs.tracing import Tracer

    tracer = Tracer()
    span = tracer.start_span("campaign.driver")
    return tracer, span


@pytest.mark.parametrize("jobs", [1, 2])
def test_trace_parent_ships_shards_back(jobs):
    from repro.obs.tracing import TRACE_SCHEMA, parse_traceparent

    tracer, span = _driver_traceparent()
    specs = _specs(n_seeds=1)
    outcomes = CampaignExecutor(
        jobs=jobs, trace_parent=span.traceparent).run(specs)
    assert all(o.ok for o in outcomes)
    for o in outcomes:
        shard = o.payload["trace"]
        assert shard["schema"] == TRACE_SCHEMA
        assert shard["process_name"].startswith("worker-")
        root = next(e for e in shard["events"]
                    if e["name"] == "campaign.run")
        # Every worker's root span joins the driver's trace and parents
        # under the driver span that crossed the pool boundary.
        assert root["trace_id"] == tracer.trace_id
        assert root["parent_span_id"] == span.span_id
        assert root["args"]["spec_hash"] == o.spec.content_hash()


def test_no_trace_parent_means_no_shard():
    outcomes = CampaignExecutor(jobs=1).run(_specs(n_seeds=1))
    assert all(o.ok for o in outcomes)
    assert all("trace" not in o.payload for o in outcomes)


def test_trace_shard_is_stripped_from_cache(tmp_path):
    _, span = _driver_traceparent()
    cache = ResultCache(tmp_path / "cache")
    spec = _specs(n_seeds=1)[0]
    [first] = CampaignExecutor(
        jobs=1, cache=cache, trace_parent=span.traceparent).run([spec])
    assert "trace" in first.payload
    # The persisted entry must stay content-addressed: no volatile shard.
    assert "trace" not in cache.get(spec)
    [replay] = CampaignExecutor(
        jobs=1, cache=cache, trace_parent=span.traceparent).run([spec])
    assert replay.cached
    assert "trace" not in replay.payload
    # Cached-or-not, the metrics agree byte for byte.
    assert json.dumps(replay.metrics, sort_keys=True) == \
        json.dumps(first.metrics, sort_keys=True)


def test_telemetry_logs_trace_id_and_event_counts(tmp_path):
    tracer, span = _driver_traceparent()
    log = tmp_path / "telemetry.jsonl"
    tel = CampaignTelemetry(log_path=log)
    CampaignExecutor(jobs=1, telemetry=tel,
                     trace_parent=span.traceparent).run(_specs(n_seeds=1))
    records = [json.loads(line) for line in log.read_text().splitlines()]
    started = next(r for r in records if r["event"] == "campaign_started")
    assert started["trace_id"] == tracer.trace_id
    completed = [r for r in records if r["event"] == "run_completed"]
    assert completed and all(r["trace_events"] >= 1 for r in completed)
