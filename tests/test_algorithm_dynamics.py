"""Simulation-level dynamics of each algorithm (beyond unit formulas)."""

import pytest

from repro.net.network import Network
from repro.net.monitor import LinkMonitor
from repro.net.queues import DropTailQueue
from repro.units import mb, mbps, ms

COUPLED_ALGOS = ["lia", "olia", "balia", "ecmtcp", "dts"]


def build_two_paths(*, rates=(mbps(100), mbps(100)), delays=(ms(10), ms(10)),
                    losses=(0.0, 0.0), queues=(100, 100), seed=1):
    net = Network(seed=seed)
    a, b = net.add_host("a"), net.add_host("b")
    routes = []
    for i in range(2):
        s = net.add_switch(f"s{i}")
        net.link(a, s, rate_bps=rates[i], delay=delays[i] / 2,
                 queue_factory=lambda q=queues[i]: DropTailQueue(limit_packets=q))
        net.link(s, b, rate_bps=rates[i], delay=delays[i] / 2,
                 queue_factory=lambda q=queues[i]: DropTailQueue(limit_packets=q),
                 loss_rate=losses[i])
        routes.append(net.route([a, s, b]))
    return net, routes


class TestBalancedPaths:
    @pytest.mark.parametrize("algorithm", COUPLED_ALGOS)
    def test_equal_paths_used_roughly_equally(self, algorithm):
        net, routes = build_two_paths(seed=2)
        conn = net.connection(routes, algorithm, total_bytes=mb(16))
        conn.start()
        net.run_until_complete([conn], timeout=60)
        a, b = conn.subflows
        share = a.acked / (a.acked + b.acked)
        assert 0.3 < share < 0.7

    @pytest.mark.parametrize("algorithm", COUPLED_ALGOS)
    def test_transfer_completes_from_cold_start(self, algorithm):
        net, routes = build_two_paths(seed=3)
        conn = net.connection(routes, algorithm, total_bytes=mb(4))
        conn.start()
        net.run_until_complete([conn], timeout=60)
        assert conn.completed


class TestCapacityAsymmetry:
    @pytest.mark.parametrize("algorithm", COUPLED_ALGOS)
    def test_fat_path_carries_more(self, algorithm):
        net, routes = build_two_paths(rates=(mbps(100), mbps(20)), seed=4)
        conn = net.connection(routes, algorithm, total_bytes=mb(16))
        conn.start()
        net.run_until_complete([conn], timeout=120)
        fat, thin = conn.subflows
        assert fat.acked > 1.5 * thin.acked


class TestLossAsymmetry:
    @pytest.mark.parametrize("algorithm", ["lia", "olia", "balia", "dts"])
    def test_lossy_path_used_less(self, algorithm):
        net, routes = build_two_paths(losses=(0.0, 0.02), seed=5)
        conn = net.connection(routes, algorithm, total_bytes=None)
        conn.start()
        net.run(until=25.0)
        clean, lossy = conn.subflows
        assert clean.acked > 1.5 * lossy.acked


class TestDelayBasedBehaviour:
    def test_wvegas_keeps_queue_near_empty(self):
        """Vegas-style control targets a few packets of backlog, unlike
        loss-based Reno which fills the buffer."""

        def mean_occupancy(algorithm):
            net, routes = build_two_paths(queues=(200, 200), seed=6)
            conn = net.connection(routes, algorithm, total_bytes=None)
            mon = LinkMonitor(net.sim, net.links, interval=0.1)
            conn.start()
            net.run(until=15.0)
            flat = [v for series in mon.occupancy for v in series[20:]]
            return sum(flat) / max(len(flat), 1)

        assert mean_occupancy("wvegas") < 0.5 * mean_occupancy("reno")

    def test_wvegas_still_gets_throughput(self):
        net, routes = build_two_paths(seed=7)
        conn = net.connection(routes, "wvegas", total_bytes=None)
        conn.start()
        net.run(until=20.0)
        assert conn.aggregate_goodput_bps(elapsed=20.0) > mbps(40)


class TestCoupledFlappiness:
    def test_fully_coupled_concentrates_on_one_path(self):
        """The Coupled algorithm's known flappiness: most traffic ends up
        on one path even when both are identical."""
        net, routes = build_two_paths(seed=8)
        conn = net.connection(routes, "coupled", total_bytes=None)
        conn.start()
        net.run(until=25.0)
        a, b = conn.subflows
        dominant = max(a.acked, b.acked) / max(a.acked + b.acked, 1)
        assert dominant > 0.7


class TestEwtcpAggression:
    def test_ewtcp_outpaces_lia_against_competition(self):
        """EWTCP's psi_h > 1 (Condition 1 violated) shows up as a larger
        share against a competing TCP flow on a shared bottleneck."""

        def mptcp_share(algorithm):
            net = Network(seed=9)
            mp, tcp, srv = (net.add_host("mp"), net.add_host("tcp"),
                            net.add_host("srv"))
            left, right = net.add_switch("L"), net.add_switch("R")
            net.link(mp, left, rate_bps=mbps(1000), delay=ms(1))
            net.link(tcp, left, rate_bps=mbps(1000), delay=ms(1))
            net.link(left, right, rate_bps=mbps(100), delay=ms(10),
                     queue_factory=lambda: DropTailQueue(limit_packets=120))
            net.link(right, srv, rate_bps=mbps(1000), delay=ms(1))
            mp_route = net.route([mp, left, right, srv])
            mptcp = net.connection([mp_route, mp_route], algorithm,
                                   total_bytes=None)
            tcp_conn = net.tcp_connection(net.route([tcp, left, right, srv]),
                                          total_bytes=None)
            mptcp.start(0.0)
            tcp_conn.start(0.1)
            net.run(until=30.0)
            mp_g = mptcp.aggregate_goodput_bps(elapsed=30.0)
            tcp_g = tcp_conn.aggregate_goodput_bps(elapsed=29.9)
            return mp_g / (mp_g + tcp_g)

        assert mptcp_share("ewtcp") > mptcp_share("lia") + 0.03


class TestDtsEpsilonInAction:
    def test_dts_tracks_recovering_path(self):
        """When the bad path recovers (capacity dip ends), DTS re-grows it:
        epsilon rises as baseRTT/RTT climbs back toward 1."""
        net, routes = build_two_paths(queues=(400, 400), seed=10)
        dipped = routes[1].forward[1]  # path 2's bottleneck hop
        dipped.rate_bps = mbps(5)  # deep dip: the queue inflates the RTT
        net.sim.schedule(8.0, lambda: setattr(dipped, "rate_bps", mbps(100)))
        conn = net.connection(routes, "dts", total_bytes=None)
        conn.start()
        net.run(until=8.0)
        during = conn.subflows[1].acked
        net.run(until=30.0)
        after = conn.subflows[1].acked - during
        # Per-second deliveries on the recovered path dwarf the dip phase.
        assert after / 22.0 > 2.0 * during / 8.0
