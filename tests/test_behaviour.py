"""Cross-cutting behavioural (integration) tests for the paper's claims."""

import pytest

from repro.net import Network
from repro.net.queues import DropTailQueue
from repro.units import mb, mbps, ms


def shared_bottleneck_net(seed=1, rate=mbps(100), queue=120):
    """One bottleneck shared by an MPTCP connection (both subflows) and a
    regular TCP flow — the TCP-friendliness acid test."""
    net = Network(seed=seed)
    mp_host, tcp_host, server = (
        net.add_host("mp"), net.add_host("tcp"), net.add_host("srv")
    )
    left, right = net.add_switch("L"), net.add_switch("R")
    net.link(mp_host, left, rate_bps=rate * 10, delay=ms(1))
    net.link(tcp_host, left, rate_bps=rate * 10, delay=ms(1))
    net.link(left, right, rate_bps=rate, delay=ms(10),
             queue_factory=lambda: DropTailQueue(limit_packets=queue))
    net.link(right, server, rate_bps=rate * 10, delay=ms(1))
    mp_route = net.route([mp_host, left, right, server])
    tcp_route = net.route([tcp_host, left, right, server])
    return net, mp_route, tcp_route


@pytest.mark.parametrize("algorithm", ["lia", "olia", "balia", "dts"])
def test_coupled_algorithms_are_tcp_friendly_on_shared_bottleneck(algorithm):
    """An MPTCP connection whose two subflows share one bottleneck with a
    Reno flow must not starve the Reno flow (RFC 6356 goal; Condition 1)."""
    net, mp_route, tcp_route = shared_bottleneck_net()
    mptcp = net.connection([mp_route, mp_route], algorithm, total_bytes=None)
    tcp = net.tcp_connection(tcp_route, total_bytes=None)
    mptcp.start(0.0)
    tcp.start(0.1)
    net.run(until=30.0)
    mp_goodput = mptcp.aggregate_goodput_bps(elapsed=30.0)
    tcp_goodput = tcp.aggregate_goodput_bps(elapsed=29.9)
    # Coupled MPTCP (2 subflows) vs 1 TCP on one pipe: TCP should keep a
    # healthy share (an uncoupled pair would push it toward 1/3).
    assert tcp_goodput > 0.3 * mp_goodput
    assert mp_goodput + tcp_goodput > mbps(80)


def test_uncoupled_reno_subflows_do_starve_tcp():
    """Control for the test above: two *uncoupled* Reno subflows should
    grab roughly 2/3 of the pipe, showing the coupling actually bites."""
    net, mp_route, tcp_route = shared_bottleneck_net()
    mptcp = net.connection([mp_route, mp_route], "reno", total_bytes=None)
    tcp = net.tcp_connection(tcp_route, total_bytes=None)
    mptcp.start(0.0)
    tcp.start(0.1)
    net.run(until=30.0)
    mp_goodput = mptcp.aggregate_goodput_bps(elapsed=30.0)
    tcp_goodput = tcp.aggregate_goodput_bps(elapsed=29.9)
    assert mp_goodput > 1.4 * tcp_goodput


def test_dts_shifts_away_from_delay_inflated_path():
    """DTS's defining behaviour (Section V.B): when one path's RTT inflates
    far above its floor, DTS moves traffic away faster than LIA."""

    def run(algorithm):
        net = Network(seed=5)
        a, b = net.add_host("a"), net.add_host("b")
        routes = []
        for i, (rate, delay, queue) in enumerate(
            [(mbps(100), ms(10), 100), (mbps(10), ms(10), 600)]
        ):
            s = net.add_switch(f"s{i}")
            net.link(a, s, rate_bps=rate * 10, delay=ms(1))
            net.link(s, b, rate_bps=rate, delay=delay,
                     queue_factory=lambda q=queue: DropTailQueue(limit_packets=q))
            routes.append(net.route([a, s, b]))
        conn = net.connection(routes, algorithm, total_bytes=None)
        conn.start()
        net.run(until=20.0)
        fast, bloated = conn.subflows
        return bloated.acked / max(conn.supply.acked, 1)

    # Path 1 is slow with a deep (bufferbloated) queue: its RTT inflates
    # hugely. DTS should route a smaller share onto it than LIA does.
    lia_share = run("lia")
    dts_share = run("dts")
    assert dts_share < lia_share


def test_more_subflows_dont_reduce_goodput_on_one_path():
    """num_subflows > 1 on a single path (the paper's Fig. 1 knob) should
    keep aggregate goodput roughly unchanged."""

    def run(n):
        net = Network(seed=6)
        a, b = net.add_host("a"), net.add_host("b")
        s = net.add_switch("s")
        net.link(a, s, rate_bps=mbps(100), delay=ms(5),
                 queue_factory=lambda: DropTailQueue(limit_packets=100))
        net.link(s, b, rate_bps=mbps(100), delay=ms(5),
                 queue_factory=lambda: DropTailQueue(limit_packets=100))
        route = net.route([a, s, b])
        conn = net.connection([route] * n, "lia", total_bytes=mb(8))
        conn.start()
        net.run_until_complete([conn], timeout=60)
        return conn.aggregate_goodput_bps()

    single = run(1)
    quad = run(4)
    assert quad == pytest.approx(single, rel=0.35)


def test_subflows_on_same_path_raise_rtt():
    """The paper's Fig. 4 lever: more subflows per path lengthen the path
    delay (deeper standing queues)."""

    def run(n):
        net = Network(seed=7)
        a, b = net.add_host("a"), net.add_host("b")
        s = net.add_switch("s")
        net.link(a, s, rate_bps=mbps(100), delay=ms(5),
                 queue_factory=lambda: DropTailQueue(limit_packets=400))
        net.link(s, b, rate_bps=mbps(100), delay=ms(5),
                 queue_factory=lambda: DropTailQueue(limit_packets=400))
        route = net.route([a, s, b])
        conn = net.connection([route] * n, "lia", total_bytes=None)
        conn.start()
        net.run(until=15.0)
        return conn.mean_rtt()

    assert run(4) > run(1)
