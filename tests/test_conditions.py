"""Condition 1 / Condition 2 checker tests."""

import numpy as np
import pytest

from repro.core import (
    ModelState,
    aggregate_equilibrium_throughput,
    check_condition1,
    condition2_asymmetry,
    decomposition,
    is_pareto_optimal_candidate,
    reno_equilibrium_throughput,
    solve_equilibrium,
)
from repro.errors import ModelError


def equilibrium(name, rtt, loss):
    model = decomposition(name)
    sol = solve_equilibrium(model, np.asarray(rtt), np.asarray(loss))
    return model, sol.state


class TestCondition1:
    @pytest.mark.parametrize("name", ["lia", "olia", "balia", "ecmtcp"])
    def test_kernel_algorithms_are_friendly(self, name):
        model, st = equilibrium(name, [0.05, 0.05], [0.01, 0.01])
        report = check_condition1(model, st)
        assert report.satisfied
        assert report.throughput_ratio <= 1.0 + 1e-6

    def test_ewtcp_is_not_friendly(self):
        model, st = equilibrium("ewtcp", [0.05, 0.05], [0.01, 0.01])
        report = check_condition1(model, st)
        assert not report.satisfied
        assert report.psi_on_best_path > 1.0

    def test_report_contents(self):
        model, st = equilibrium("lia", [0.05, 0.08], [0.01, 0.02])
        report = check_condition1(model, st)
        assert report.beta_on_best_path == pytest.approx(0.5)
        assert report.phi_on_best_path == pytest.approx(0.0)

    def test_aggregate_throughput_formula(self):
        model, st = equilibrium("olia", [0.05, 0.05], [0.01, 0.01])
        agg = aggregate_equilibrium_throughput(model, st, loss_on_best=0.01)
        reno = reno_equilibrium_throughput(0.05, 0.01)
        # psi = 1 at the best path: aggregate equals the Reno rate.
        assert agg == pytest.approx(reno, rel=1e-6)

    def test_reno_throughput_validation(self):
        with pytest.raises(ModelError):
            reno_equilibrium_throughput(0.05, 0.0)

    def test_aggregate_validation(self):
        model, st = equilibrium("lia", [0.05, 0.05], [0.01, 0.01])
        with pytest.raises(ModelError):
            aggregate_equilibrium_throughput(model, st, loss_on_best=0)


class TestCondition2:
    def test_olia_is_gradient_field_at_equal_rtt(self):
        model = decomposition("olia")
        st = ModelState(w=np.array([8.0, 14.0]), rtt=np.array([0.05, 0.05]))
        assert condition2_asymmetry(model, st) < 1e-3
        assert is_pareto_optimal_candidate(model, st)

    def test_lia_is_not_gradient_field_at_asymmetric_state(self):
        model = decomposition("lia")
        st = ModelState(w=np.array([8.0, 20.0]), rtt=np.array([0.03, 0.09]))
        assert condition2_asymmetry(model, st) > 1e-2
        assert not is_pareto_optimal_candidate(model, st)

    def test_single_path_trivially_symmetric(self):
        model = decomposition("lia")
        st = ModelState(w=np.array([10.0]), rtt=np.array([0.05]))
        assert condition2_asymmetry(model, st) == pytest.approx(0.0, abs=1e-9)

    def test_custom_theta(self):
        model = decomposition("olia")
        st = ModelState(w=np.array([8.0, 14.0]), rtt=np.array([0.05, 0.05]))
        value = condition2_asymmetry(model, st, theta=lambda s: s.x**2)
        assert value < 1e-3
