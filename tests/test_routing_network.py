"""Route and Network-builder tests."""

import pytest

from repro.errors import ConfigurationError, RoutingError
from repro.net.network import Network
from repro.net.routing import Route
from repro.units import mbps, ms


@pytest.fixture
def net():
    n = Network(seed=0)
    a, b = n.add_host("a"), n.add_host("b")
    s1, s2 = n.add_switch("s1"), n.add_switch("s2")
    n.link(a, s1, rate_bps=mbps(100), delay=ms(2))
    n.link(s1, s2, rate_bps=mbps(50), delay=ms(10))
    n.link(s2, b, rate_bps=mbps(100), delay=ms(3))
    return n


class TestNetworkBuilder:
    def test_duplicate_node_name_rejected(self, net):
        with pytest.raises(ConfigurationError):
            net.add_host("a")

    def test_node_lookup(self, net):
        assert net.node("s1").name == "s1"

    def test_unknown_node_lookup(self, net):
        with pytest.raises(RoutingError):
            net.node("zz")

    def test_link_between(self, net):
        a, s1 = net.node("a"), net.node("s1")
        link = net.link_between(a, s1)
        assert link.src is a and link.dst is s1

    def test_link_between_missing(self, net):
        with pytest.raises(RoutingError):
            net.link_between(net.node("a"), net.node("b"))

    def test_links_are_bidirectional_pairs(self, net):
        assert len(net.links) == 6  # 3 cables, two directions each

    def test_route_by_names(self, net):
        route = net.route(["a", "s1", "s2", "b"])
        assert route.src.name == "a"
        assert route.dst.name == "b"

    def test_route_needs_two_nodes(self, net):
        with pytest.raises(RoutingError):
            net.route(["a"])

    def test_queue_factory_gives_independent_queues(self):
        from repro.net.queues import DropTailQueue

        n = Network()
        a, b = n.add_host("a"), n.add_host("b")
        fwd, rev = n.link(a, b, rate_bps=mbps(10), delay=ms(1),
                          queue_factory=lambda: DropTailQueue(limit_packets=7))
        assert fwd.queue is not rev.queue
        assert fwd.queue.limit == 7


class TestRoute:
    def test_base_rtt_sums_both_directions(self, net):
        route = net.route(["a", "s1", "s2", "b"])
        assert route.base_rtt() == pytest.approx(2 * (0.002 + 0.010 + 0.003))

    def test_min_rate_is_bottleneck(self, net):
        route = net.route(["a", "s1", "s2", "b"])
        assert route.min_rate() == mbps(50)

    def test_hops(self, net):
        assert net.route(["a", "s1", "s2", "b"]).hops() == 3

    def test_switch_hops_counts_sw_sw_only(self, net):
        assert net.route(["a", "s1", "s2", "b"]).switch_hops() == 1

    def test_reversed_swaps_endpoints(self, net):
        route = net.route(["a", "s1", "s2", "b"])
        back = route.reversed()
        assert back.src.name == "b" and back.dst.name == "a"

    def test_discontiguous_route_rejected(self, net):
        route = net.route(["a", "s1", "s2", "b"])
        with pytest.raises(RoutingError):
            Route([route.forward[0], route.forward[2]],
                  [route.reverse[0], route.reverse[2]])

    def test_empty_route_rejected(self):
        with pytest.raises(RoutingError):
            Route([], [])

    def test_mismatched_reverse_rejected(self, net):
        fwd = net.route(["a", "s1", "s2", "b"])
        with pytest.raises(RoutingError):
            Route(fwd.forward, fwd.forward)
