"""The `obs analyze` diagnosis engine: detectors, classification, schema.

Each detector is exercised with a minimal synthetic input that should
trip it — and a sibling input that should not — so threshold changes
show up as explicit test diffs rather than silent behavior shifts.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.analyze import (
    DIAGNOSIS_SCHEMA,
    RTO_STORM_COUNT,
    analyze,
    analyze_paths,
    classify_input,
    load_input,
    validate_diagnosis,
)
from repro.obs.flight import FLIGHT_SCHEMA
from repro.obs.timeseries import SERIES_SCHEMA
from repro.obs.tracing import TRACE_SCHEMA, Tracer


def _findings(report, kind):
    return [f for f in report["findings"] if f["kind"] == kind]


def _shard_with(names, gap_s=0.0):
    """A trace shard whose instants carry the given names, spaced gap_s."""
    tracer = Tracer()
    conn = tracer.start_span("serve.connection")
    for i, name in enumerate(names):
        tracer._record({"type": "instant", "name": name, "ts": i * gap_s,
                        "depth": 1, "parent_span_id": conn.span_id,
                        "trace_id": tracer.trace_id, "args": {}})
    conn.finish()
    return tracer.shard_dict("synthetic")


def _flight(events):
    header = {"schema": FLIGHT_SCHEMA, "reason": "test", "dumped_unix": 0.0,
              "recorded": len(events), "dropped": 0, "counts": {}}
    return [header] + [dict(e, seq=i + 1) for i, e in enumerate(events)]


def _series(series):
    return {"schema": SERIES_SCHEMA, "series": series,
            "interval_s": 0.5, "samples_taken": 10}


# ----------------------------------------------------------- classification

def test_classify_inputs():
    assert classify_input({"traceEvents": []}) == "merged-trace"
    assert classify_input({"schema": TRACE_SCHEMA, "events": []}) \
        == "trace-shard"
    assert classify_input(_series({})) == "series"
    assert classify_input({"schema": "repro.obs.manifest/1"}) == "manifest"
    assert classify_input(_flight([])) == "flight"
    assert classify_input({"schema": DIAGNOSIS_SCHEMA}) == "diagnosis"
    assert classify_input({"random": True}) == "unknown"
    assert classify_input([1, 2]) == "unknown"
    assert classify_input("text") == "unknown"


def test_load_input_json_and_jsonl(tmp_path):
    p = tmp_path / "shard.json"
    p.write_text(json.dumps({"schema": TRACE_SCHEMA, "events": []}))
    doc, kind = load_input(p)
    assert kind == "trace-shard"

    f = tmp_path / "flight.jsonl"
    f.write_text("\n".join(json.dumps(e) for e in _flight(
        [{"ts": 0.1, "kind": "loss", "path": 0}])))
    doc, kind = load_input(f)
    assert kind == "flight"
    assert len(doc) == 2


# ---------------------------------------------------------------- detectors

def test_loss_detector_from_trace_and_flight():
    report = analyze(
        shards=[_shard_with(["serve.loss"] * 3)],
        flights=[_flight([{"ts": 0.1, "kind": "loss", "path": 0}] * 3)])
    [finding] = _findings(report, "loss")
    assert finding["severity"] == "warning"  # 6 >= 5
    assert "6" in finding["title"]
    types = {e["type"] for e in finding["evidence"]}
    assert types == {"span", "flight"}
    assert all("seq" in e for e in finding["evidence"]
               if e["type"] == "flight")


def test_loss_detector_info_below_threshold_and_absent_when_clean():
    report = analyze(shards=[_shard_with(["serve.loss"])])
    [finding] = _findings(report, "loss")
    assert finding["severity"] == "info"
    clean = analyze(shards=[_shard_with(["serve.other"])])
    assert not _findings(clean, "loss")


def test_rto_storm_critical_when_clustered():
    report = analyze(
        shards=[_shard_with(["serve.rto"] * RTO_STORM_COUNT, gap_s=1.0)])
    [finding] = _findings(report, "rto_storm")
    assert finding["severity"] == "critical"
    assert not _findings(report, "rto")


def test_rto_info_when_spread_out():
    report = analyze(
        shards=[_shard_with(["serve.rto"] * RTO_STORM_COUNT, gap_s=60.0)])
    [finding] = _findings(report, "rto")
    assert finding["severity"] == "info"
    assert not _findings(report, "rto_storm")


def test_cwnd_collapse_detected():
    report = analyze(series=[_series({
        "path0.cwnd": {"kind": "gauge", "points":
                       [[0.0, 2.0], [1.0, 20.0], [2.0, 3.0]]},
        "path1.cwnd": {"kind": "gauge", "points":
                       [[0.0, 10.0], [1.0, 12.0], [2.0, 11.0]]},
    })])
    [finding] = _findings(report, "cwnd_collapse")
    assert "path0.cwnd" in finding["title"]
    [ev] = finding["evidence"]
    assert ev["type"] == "series" and ev["value"] == 3.0 and ev["peak"] == 20.0


def test_cwnd_collapse_ignores_small_peaks():
    # A cwnd bouncing around below 4 segments is slow start, not collapse.
    report = analyze(series=[_series({
        "path0.cwnd": {"kind": "gauge", "points":
                       [[0.0, 3.0], [1.0, 1.0], [2.0, 3.0]]},
    })])
    assert not _findings(report, "cwnd_collapse")


def test_stale_gauge_detected():
    report = analyze(series=[_series({
        "path0.cwnd": {"kind": "gauge", "points": [[0.0, 1.0]],
                       "updated_unix": 1000.0},
        "path1.cwnd": {"kind": "gauge", "points": [[0.0, 1.0]],
                       "updated_unix": 1100.0},
    })])
    [finding] = _findings(report, "stale_gauge")
    assert "path0.cwnd" in finding["title"]
    assert finding["evidence"][0]["lag_s"] == 100.0


def test_stale_gauge_quiet_when_fresh():
    report = analyze(series=[_series({
        "path0.cwnd": {"kind": "gauge", "points": [], "updated_unix": 1000.0},
        "path1.cwnd": {"kind": "gauge", "points": [], "updated_unix": 1001.0},
    })])
    assert not _findings(report, "stale_gauge")


def test_energy_spike_detected():
    points = [[float(t), 1.0] for t in range(8)] + [[8.0, 9.0]]
    report = analyze(series=[_series({
        "path0.power_w": {"kind": "gauge", "points": points},
    })])
    [finding] = _findings(report, "energy_spike")
    assert finding["evidence"][0]["value"] == 9.0


def test_flight_failures_detected():
    report = analyze(flights=[_flight([
        {"ts": 1.0, "kind": "conn_dropped", "conn": 9, "reason": "idle"},
        {"ts": 2.0, "kind": "campaign_run_failed", "spec_hash": "ab",
         "error": "boom"},
    ])])
    [dropped] = _findings(report, "conn_dropped")
    assert dropped["severity"] == "warning"
    assert "idle" in dropped["detail"]
    [failed] = _findings(report, "run_failed")
    assert failed["severity"] == "critical"
    assert "boom" in failed["detail"]


def test_controller_comparison_from_spans():
    def conn_shard(controller, energy):
        tracer = Tracer()
        handle = tracer.start_span(
            "serve.connection", controller=controller, energy_j=energy,
            acked_segments=100, payload_bytes=1200)
        handle.finish()
        return tracer.shard_dict(controller)

    report = analyze(shards=[conn_shard("dts", 1.0), conn_shard("lia", 2.0)])
    assert set(report["controllers"]) == {"dts", "lia"}
    assert report["controllers"]["dts"]["joules_per_bit"] == \
        pytest.approx(1.0 / (100 * 1200 * 8))
    [cmp_finding] = _findings(report, "controller_comparison")
    assert "lia" in cmp_finding["title"] and "2.00x" in cmp_finding["title"]


def test_controller_stats_from_manifest():
    manifest = {"schema": "repro.obs.manifest/1", "annotations": {
        "connections": {"1": {"controller": "dts", "energy_j": 4.0,
                              "acked_segments": 50, "payload_bytes": 1200}}}}
    report = analyze(manifests=[manifest])
    assert report["controllers"]["dts"]["connections"] == 1


# ------------------------------------------------------------ critical paths

def test_critical_path_descends_longest_child():
    tracer = Tracer()
    root = tracer.start_span("fetch.transfer")
    short = tracer.start_span("fetch.connect", parent=root)
    long = tracer.start_span("serve.connection", parent=root)
    # Force durations without sleeping: records are plain dicts.
    short.finish()
    long.finish()
    root.finish()
    shard = tracer.shard_dict("p")
    for ev in shard["events"]:
        if ev["name"] == "serve.connection":
            ev["dur"] = 0.5
        elif ev["name"] == "fetch.connect":
            ev["dur"] = 0.1
        elif ev["name"] == "fetch.transfer":
            ev["dur"] = 0.7
    report = analyze(shards=[shard])
    [path] = report["critical_paths"]
    assert [s["name"] for s in path["steps"]] == \
        ["fetch.transfer", "serve.connection"]
    assert path["total_us"] == pytest.approx(0.7e6)


# ------------------------------------------------------------------- report

def test_report_is_schema_valid_and_sorted():
    report = analyze(
        shards=[_shard_with(["serve.loss"] * 5
                            + ["serve.rto"] * RTO_STORM_COUNT)],
        flights=[_flight([{"ts": 1.0, "kind": "conn_dropped",
                           "conn": 1, "reason": "idle"}])])
    assert validate_diagnosis(report) == []
    severities = [f["severity"] for f in report["findings"]]
    order = {"critical": 0, "warning": 1, "info": 2}
    assert severities == sorted(severities, key=order.__getitem__)
    assert report["summary"]["findings"] == len(report["findings"])
    by_sev = report["summary"]["by_severity"]
    assert sum(by_sev.values()) == len(report["findings"])
    json.dumps(report)


def test_validate_diagnosis_flags_problems():
    assert validate_diagnosis("nope") == ["diagnosis must be a JSON object"]
    problems = validate_diagnosis({"schema": "other"})
    assert any("schema" in p for p in problems)
    assert any("missing key" in p for p in problems)
    bad = analyze()
    bad["findings"] = [{"kind": "x"}]
    problems = validate_diagnosis(bad)
    assert any("missing 'severity'" in p for p in problems)
    bad["findings"] = [{"kind": "x", "severity": "fatal", "title": "t",
                        "detail": "d", "evidence": []}]
    assert any("bad severity" in p for p in validate_diagnosis(bad))


def test_analyze_paths_mixed_inputs(tmp_path):
    shard_path = tmp_path / "shard.json"
    shard_path.write_text(json.dumps(_shard_with(["serve.loss"] * 5)))
    flight_path = tmp_path / "flight.jsonl"
    flight_path.write_text("\n".join(
        json.dumps(e) for e in _flight([{"ts": 0.1, "kind": "loss"}])))
    stray = tmp_path / "stray.json"
    stray.write_text(json.dumps({"whatever": 1}))

    report = analyze_paths([shard_path, flight_path, stray])
    kinds = {i["path"]: i["kind"] for i in report["inputs"]}
    assert kinds[str(shard_path)] == "trace-shard"
    assert kinds[str(flight_path)] == "flight"
    assert kinds[str(stray)] == "unknown"
    [finding] = _findings(report, "loss")
    assert "6" in finding["title"]  # stray contributed nothing
    assert report["summary"]["flight_events"] == 1
