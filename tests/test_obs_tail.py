"""Tolerant JSONL reading: concurrent appends, tailing, report wiring."""

import json

from repro.obs.report import render_file
from repro.obs.tail import JsonlTailer, split_jsonl


# --------------------------------------------------------------- split_jsonl

def test_split_jsonl_parses_complete_lines():
    records, bad, partial = split_jsonl('{"a": 1}\n{"b": 2}\n')
    assert records == [{"a": 1}, {"b": 2}]
    assert bad == []
    assert partial is False


def test_partial_trailing_line_is_skipped_silently():
    # A concurrent writer was caught mid-append: no newline, no parse.
    records, bad, partial = split_jsonl('{"a": 1}\n{"b": ')
    assert records == [{"a": 1}]
    assert bad == []
    assert partial is True


def test_interior_malformed_line_is_reported():
    records, bad, partial = split_jsonl('{"a": 1}\nnot json\n{"b": 2}\n')
    assert records == [{"a": 1}, {"b": 2}]
    assert bad == [2]
    assert partial is False


def test_newline_terminated_garbage_tail_is_bad_not_partial():
    records, bad, partial = split_jsonl('{"a": 1}\ngarbage\n')
    assert records == [{"a": 1}]
    assert bad == [2]
    assert partial is False


# --------------------------------------------------------------- JsonlTailer

def test_tailer_returns_only_newly_appended_records(tmp_path):
    path = tmp_path / "log.jsonl"
    tailer = JsonlTailer(path)
    assert tailer.poll() == []  # file may not exist yet
    path.write_text('{"n": 1}\n')
    assert tailer.poll() == [{"n": 1}]
    with open(path, "a") as fh:
        fh.write('{"n": 2}\n{"n": 3}\n')
    assert tailer.poll() == [{"n": 2}, {"n": 3}]
    assert tailer.poll() == []
    assert tailer.records_read == 3


def test_tailer_carries_partial_line_until_newline_arrives(tmp_path):
    path = tmp_path / "log.jsonl"
    path.write_text('{"n": 1}\n{"n": ')
    tailer = JsonlTailer(path)
    assert tailer.poll() == [{"n": 1}]  # the torn tail is held back
    with open(path, "a") as fh:
        fh.write('2}\n')
    assert tailer.poll() == [{"n": 2}]
    assert tailer.bad_lines == 0


def test_tailer_resets_on_truncation(tmp_path):
    path = tmp_path / "log.jsonl"
    path.write_text('{"n": 1}\n{"n": 2}\n')
    tailer = JsonlTailer(path)
    tailer.poll()
    path.write_text('{"n": 9}\n')  # rotated: smaller than the old offset
    assert tailer.poll() == [{"n": 9}]


def test_tailer_counts_malformed_interior_lines(tmp_path):
    path = tmp_path / "log.jsonl"
    path.write_text('{"n": 1}\nnope\n[1, 2]\n{"n": 2}\n')
    tailer = JsonlTailer(path)
    assert tailer.poll() == [{"n": 1}, {"n": 2}]
    assert tailer.bad_lines == 2


# ----------------------------------------------------- obs report tolerance

def test_report_tolerates_partial_trailing_line(tmp_path):
    # `obs report` on a log being written right now must not raise.
    path = tmp_path / "telemetry.jsonl"
    path.write_text(
        json.dumps({"ts": 1.0, "event": "run_started", "seed": 1}) + "\n"
        + '{"ts": 2.0, "event": "run_co')
    out = render_file(path)
    assert "run_started" in out


def test_report_on_only_a_partial_line_warns_not_raises(tmp_path):
    path = tmp_path / "telemetry.jsonl"
    path.write_text('{"ts": 1.0, "event"')
    out = render_file(path)
    assert "partial" in out.lower()


def test_report_renders_flight_dump(tmp_path):
    from repro.obs import FlightRecorder

    fr = FlightRecorder()
    fr.record("loss", conn=1, path=0)
    fr.record("loss", conn=1, path=1)
    fr.record("rto", conn=1, path=0)
    path = fr.dump(tmp_path / "flight.jsonl", reason="test")
    out = render_file(path)
    assert "flight" in out.lower()
    assert "loss" in out
    assert "rto" in out
