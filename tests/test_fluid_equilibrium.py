"""Cross-validation of the direct equilibrium solver and the scale knobs.

Three contracts from PR 10 are pinned here:

* ``solve_fluid_equilibrium`` lands on the same stationary rate
  allocation a long-horizon ``FluidSimulation`` integrates to, across
  random topologies, supported-algorithm mixes, and seeds — on both the
  fast path and the legacy reference loop.  Tolerances are calibrated
  per family: the coupled algorithms agree within a few percent, while
  uncoupled AIMD (reno, ewtcp) legitimately runs hotter in the
  deterministic fluid equilibrium than the stochastic sawtooth (the
  solver holds the bottleneck at capacity; the engine leaves troughs
  unused), so those get a loose one-sided band.
* Structurally invalid solves raise the typed
  :class:`~repro.errors.EquilibriumError` (unsupported algorithms,
  empty/unfinalized networks, non-positive parameters) and successful
  solves carry convergence diagnostics.
* The ``dtype`` knob: float32 stepping tracks the float64 reference
  within tight drift bounds, ``"auto"`` engages float32 only past the
  size threshold on the fast path, and invalid combinations are
  rejected.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro.fluidsim.engine as engine_mod
from repro.errors import ConfigurationError, EquilibriumError, ModelError
from repro.fluidsim import (
    FluidNetwork,
    FluidSimulation,
    equilibrium_supported,
    solve_fluid_equilibrium,
)
from repro.fluidsim.adapters import create_fluid_algorithm
from repro.topology import FatTree
from repro.units import ms

# ------------------------------------------------------------------ helpers

#: Algorithms with a loss-balance equilibrium (the solver's domain).
SUPPORTED = ["reno", "ewtcp", "coupled", "lia", "olia", "balia",
             "ecmtcp", "dts"]
#: Algorithms whose extra dynamics (delay steering, ECN, energy prices)
#: have no fixed point of the solver's shape.
UNSUPPORTED = ["wvegas", "dctcp", "dts-ext"]


def _build_net(pair_seed: int, algo_picks, n_subflows: int) -> FluidNetwork:
    """A k=4 fat-tree with len(algo_picks) random connections; identical
    arguments build identical networks (fresh instance per run because
    adapters may hold per-run state)."""
    topo = FatTree(4, link_delay=ms(1))
    rng = np.random.default_rng(pair_seed)
    hosts = list(topo.hosts)
    net = FluidNetwork(topo, path_seed=pair_seed)
    for algo in algo_picks:
        src, dst = rng.choice(len(hosts), size=2, replace=False)
        net.add_connection(hosts[int(src)], hosts[int(dst)], algo,
                           n_subflows=n_subflows)
    net.finalize()
    return net


def _engine_aggregate(net: FluidNetwork, *, fast_path: bool = True,
                      horizon: float = 8.0) -> float:
    """Long-horizon time-stepped aggregate goodput (the solver's oracle).

    The run includes the short initial transient, which at this horizon
    perturbs the mean by well under the comparison tolerances.
    """
    sim = FluidSimulation(net, dt=0.004, seed=1, fast_path=fast_path)
    return sim.run(horizon).aggregate_goodput_bps


def _tolerance(algo_picks) -> float:
    """Calibrated relative-agreement band for an algorithm mix."""
    picks = set(algo_picks)
    if picks & {"reno", "ewtcp"}:
        # Uncoupled AIMD: deterministic equilibrium sits up to ~40%
        # above the stochastic sawtooth mean.
        return 0.45
    return 0.20


# ----------------------------------------------- solver vs engine property


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    pair_seed=st.integers(0, 10_000),
    algo_picks=st.lists(st.sampled_from(SUPPORTED), min_size=1, max_size=4),
    n_subflows=st.integers(1, 4),
)
def test_solver_matches_time_stepped_engine(pair_seed, algo_picks,
                                            n_subflows):
    """Random topology/algorithm/seed draws: the direct solve and a
    long-horizon integration agree on the aggregate rate allocation."""
    eq = solve_fluid_equilibrium(_build_net(pair_seed, algo_picks,
                                            n_subflows))
    assert eq.converged, (
        f"solver stalled at residual {eq.residual:.3g} on "
        f"{algo_picks} x{n_subflows} (seed {pair_seed})")
    engine = _engine_aggregate(_build_net(pair_seed, algo_picks, n_subflows))
    rel = abs(eq.aggregate_goodput_bps - engine) / engine
    assert rel < _tolerance(algo_picks), (
        f"solver {eq.aggregate_goodput_bps:.3e} vs engine {engine:.3e} "
        f"({rel:.1%}) for {algo_picks} x{n_subflows} (seed {pair_seed})")


def test_solver_matches_legacy_reference_loop():
    """The legacy (non-fast-path) loop is the independent oracle: the
    solver must agree with it too, not just with the fast path."""
    for algos, n_sub in [(["lia", "lia", "olia"], 2), (["dts", "balia"], 3)]:
        eq = solve_fluid_equilibrium(_build_net(17, algos, n_sub))
        assert eq.converged
        legacy = _engine_aggregate(_build_net(17, algos, n_sub),
                                   fast_path=False, horizon=6.0)
        rel = abs(eq.aggregate_goodput_bps - legacy) / legacy
        assert rel < _tolerance(algos), f"{algos}: {rel:.1%}"


def test_equilibrium_state_is_self_consistent():
    """The returned arrays satisfy the model's own definitional
    relations (x = w/rtt, goodput = rate x (1 - p), rtt >= base)."""
    net = _build_net(3, ["lia", "dts", "balia"], 2)
    eq = solve_fluid_equilibrium(net)
    assert eq.converged
    np.testing.assert_allclose(eq.x_pkts, eq.w / eq.rtt, rtol=1e-12)
    assert np.all(eq.rtt >= net.base_rtt - 1e-15)
    assert np.all(eq.w >= 1.0)
    assert np.all((eq.p_path >= 0) & (eq.p_path <= 0.5))
    assert np.all((eq.link_utilization >= 0) & (eq.link_utilization <= 1))
    assert np.all((eq.queue_bits >= 0) & (eq.queue_bits <= net.buffer_bits))
    per_sub = eq.x_pkts * net.packet_bits * (1.0 - eq.p_path)
    want = np.bincount(net.subflow_conn, weights=per_sub,
                       minlength=len(net.connections))
    np.testing.assert_allclose(eq.connection_goodput_bps, want, rtol=1e-12)
    assert eq.aggregate_goodput_bps == pytest.approx(np.sum(want))
    assert eq.n_subflows == net.n_subflows


def test_solver_reports_convergence_diagnostics():
    eq = solve_fluid_equilibrium(_build_net(5, ["lia", "lia"], 2))
    assert eq.converged
    assert 10 < eq.iterations <= 400
    assert eq.residual < 1e-3
    assert eq.residual == pytest.approx(
        max(eq.residual_window, eq.residual_capacity))


def test_non_converged_solve_returns_result_not_raise():
    """Starving the iteration budget must yield a diagnosable result
    (the campaign executor's fallback trigger), never an exception."""
    eq = solve_fluid_equilibrium(_build_net(5, ["lia", "lia"], 2),
                                 max_iter=3)
    assert not eq.converged
    assert eq.iterations == 3
    assert eq.residual >= 1e-3


# --------------------------------------------------------------- typed errors


def test_unsupported_algorithms_raise_equilibrium_error():
    for algo in UNSUPPORTED:
        net = _build_net(1, [algo, "lia"], 2)
        with pytest.raises(EquilibriumError,
                           match="no loss-balance equilibrium"):
            solve_fluid_equilibrium(net)


def test_unfinalized_network_raises():
    net = FluidNetwork(FatTree(4, link_delay=ms(1)), path_seed=1)
    net.add_connection(net.topology.hosts[0], net.topology.hosts[5], "lia",
                       n_subflows=2)
    with pytest.raises(EquilibriumError, match="finalize"):
        solve_fluid_equilibrium(net)


def test_empty_network_raises():
    net = FluidNetwork(FatTree(4, link_delay=ms(1)), path_seed=1)
    net.finalize()
    with pytest.raises(EquilibriumError, match="empty"):
        solve_fluid_equilibrium(net)


@pytest.mark.parametrize("param", ["max_iter", "tol", "damping",
                                   "price_gain", "queue_ramp",
                                   "initial_price", "initial_window"])
def test_nonpositive_solver_params_raise(param):
    net = _build_net(1, ["lia"], 1)
    with pytest.raises(EquilibriumError, match=param):
        solve_fluid_equilibrium(net, **{param: 0})


def test_equilibrium_error_is_a_model_error():
    assert issubclass(EquilibriumError, ModelError)


def test_equilibrium_supported_classification():
    for name in SUPPORTED:
        assert equilibrium_supported(create_fluid_algorithm(name)), name
    for name in UNSUPPORTED:
        assert not equilibrium_supported(create_fluid_algorithm(name)), name


# ------------------------------------------------------------ float32 mode


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    pair_seed=st.integers(0, 10_000),
    algo_picks=st.lists(st.sampled_from(SUPPORTED), min_size=1, max_size=3),
    seed=st.integers(0, 50),
)
def test_float32_drift_is_bounded(pair_seed, algo_picks, seed):
    """float32 stepping contracts to the same equilibrium as float64:
    aggregate goodput drifts by well under a part in a thousand."""
    def run(dtype):
        net = _build_net(pair_seed, algo_picks, 2)
        sim = FluidSimulation(net, dt=0.004, seed=seed, dtype=dtype)
        return sim.run(2.0)

    res32, res64 = run("float32"), run("float64")
    agg32, agg64 = res32.aggregate_goodput_bps, res64.aggregate_goodput_bps
    assert agg32 == pytest.approx(agg64, rel=1e-3)
    np.testing.assert_allclose(res32.connection_goodput_bps,
                               res64.connection_goodput_bps,
                               rtol=5e-3, atol=1e3)
    np.testing.assert_allclose(res32.mean_rtt, res64.mean_rtt, rtol=1e-3)


def test_float32_state_arrays_actually_engage():
    net = _build_net(2, ["lia"], 2)
    sim = FluidSimulation(net, dt=0.004, seed=1, dtype="float32")
    assert sim.compute_dtype == np.float32
    assert sim.w.dtype == np.float32
    sim.run(0.1)
    assert sim.w.dtype == np.float32
    assert sim.rtt.dtype == np.float32


def test_dtype_auto_resolution_threshold():
    """auto -> float64 below the subflow threshold, float32 at/above it
    (exercised via a lowered threshold, not a 65536-subflow build)."""
    net = _build_net(2, ["lia"], 2)
    assert FluidSimulation(net, dt=0.004, seed=1).compute_dtype == np.float64
    old = engine_mod._FLOAT32_AUTO_THRESHOLD
    try:
        engine_mod._FLOAT32_AUTO_THRESHOLD = 1
        sim = FluidSimulation(net, dt=0.004, seed=1)
        assert sim.compute_dtype == np.float32
        legacy = FluidSimulation(net, dt=0.004, seed=1, fast_path=False)
        assert legacy.compute_dtype == np.float64  # auto never forces f32
    finally:
        engine_mod._FLOAT32_AUTO_THRESHOLD = old


def test_invalid_dtype_rejected():
    net = _build_net(2, ["lia"], 1)
    with pytest.raises(ConfigurationError, match="dtype"):
        FluidSimulation(net, dt=0.004, seed=1, dtype="float16")


def test_float32_requires_fast_path():
    net = _build_net(2, ["lia"], 1)
    with pytest.raises(ConfigurationError, match="float64 reference"):
        FluidSimulation(net, dt=0.004, seed=1, dtype="float32",
                        fast_path=False)


def test_compute_arrays_cache_and_dtypes():
    net = _build_net(2, ["lia"], 2)
    ca64 = net.compute_arrays(np.float64)
    assert ca64.base_rtt is net.base_rtt          # canonical, no copy
    assert net.compute_arrays(np.float64) is ca64  # cached
    ca32 = net.compute_arrays(np.float32)
    assert ca32.base_rtt.dtype == np.float32
    assert net.compute_arrays(np.float32) is ca32
    np.testing.assert_allclose(ca32.capacity, net.capacity, rtol=1e-6)
