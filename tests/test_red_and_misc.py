"""RED-queue end-to-end behaviour and miscellaneous network-facade tests."""

import pytest

from repro.net.monitor import LinkMonitor
from repro.net.network import Network
from repro.net.queues import DropTailQueue, REDQueue
from repro.units import mbps, mib, ms


def red_path(seed=1, **red_kwargs):
    net = Network(seed=seed)
    a, b = net.add_host("a"), net.add_host("b")
    s = net.add_switch("s")

    def qf():
        return REDQueue(limit_packets=200, min_th=20, max_th=80, max_p=0.1,
                        rng=net.sim.rng, **red_kwargs)

    net.link(a, s, rate_bps=mbps(100), delay=ms(5), queue_factory=qf)
    net.link(s, b, rate_bps=mbps(100), delay=ms(5), queue_factory=qf)
    return net, net.route([a, s, b])


class TestRedEndToEnd:
    def test_transfer_completes_over_red(self):
        net, route = red_path()
        conn = net.tcp_connection(route, total_bytes=mib(4))
        conn.start()
        net.run_until_complete([conn], timeout=120)
        assert conn.completed

    def test_red_drops_early(self):
        net, route = red_path()
        conn = net.tcp_connection(route, total_bytes=None)
        conn.start()
        net.run(until=15.0)
        red_queues = [l.queue for l in net.links if isinstance(l.queue, REDQueue)]
        assert sum(q.drops for q in red_queues) > 0
        # Early drops keep the queue below the hard limit.
        assert all(len(q) < q.limit for q in red_queues)

    def test_red_keeps_average_queue_below_droptail(self):
        def mean_occupancy(use_red):
            if use_red:
                net, route = red_path(seed=2)
            else:
                net = Network(seed=2)
                a, b = net.add_host("a"), net.add_host("b")
                s = net.add_switch("s")
                qf = lambda: DropTailQueue(limit_packets=200)
                net.link(a, s, rate_bps=mbps(100), delay=ms(5), queue_factory=qf)
                net.link(s, b, rate_bps=mbps(100), delay=ms(5), queue_factory=qf)
                route = net.route([a, s, b])
            conn = net.tcp_connection(route, total_bytes=None)
            mon = LinkMonitor(net.sim, net.links, interval=0.1)
            conn.start()
            net.run(until=15.0)
            flat = [v for series in mon.occupancy for v in series[20:]]
            return sum(flat) / max(len(flat), 1)

        assert mean_occupancy(use_red=True) < mean_occupancy(use_red=False)

    def test_red_with_ecn_marks_dctcp(self):
        net = Network(seed=3)
        a, b = net.add_host("a"), net.add_host("b")
        s = net.add_switch("s")

        def qf():
            return REDQueue(limit_packets=200, min_th=10, max_th=60,
                            max_p=0.2, ecn=True, rng=net.sim.rng)

        net.link(a, s, rate_bps=mbps(100), delay=ms(5), queue_factory=qf)
        net.link(s, b, rate_bps=mbps(100), delay=ms(5), queue_factory=qf)
        conn = net.tcp_connection(net.route([a, s, b]), total_bytes=mib(4),
                                  algorithm="dctcp")
        conn.start()
        net.run_until_complete([conn], timeout=120)
        marks = sum(l.queue.marks for l in net.links)
        assert conn.completed
        assert marks > 0


class TestNetworkFacadeMisc:
    def test_run_until_complete_times_out_gracefully(self):
        net = Network(seed=1)
        a, b = net.add_host("a"), net.add_host("b")
        net.link(a, b, rate_bps=mbps(0.1), delay=ms(5))
        conn = net.tcp_connection(net.route([a, b]), total_bytes=mib(8))
        conn.start()
        t = net.run_until_complete([conn], timeout=1.0)
        assert not conn.completed
        assert t <= 1.1

    def test_run_until_complete_without_args_uses_all_connections(self):
        net = Network(seed=1)
        a, b = net.add_host("a"), net.add_host("b")
        net.link(a, b, rate_bps=mbps(100), delay=ms(5))
        route = net.route([a, b])
        c1 = net.tcp_connection(route, total_bytes=200_000)
        c2 = net.tcp_connection(route, total_bytes=200_000)
        c1.start(), c2.start()
        net.run_until_complete(timeout=60)
        assert c1.completed and c2.completed

    def test_controller_instance_accepted_directly(self):
        from repro.algorithms import LiaController

        net = Network(seed=1)
        a, b = net.add_host("a"), net.add_host("b")
        net.link(a, b, rate_bps=mbps(100), delay=ms(5))
        ctrl = LiaController()
        conn = net.connection([net.route([a, b])], ctrl, total_bytes=100_000)
        assert conn.controller is ctrl

    def test_connections_registered_on_network(self):
        net = Network(seed=1)
        a, b = net.add_host("a"), net.add_host("b")
        net.link(a, b, rate_bps=mbps(100), delay=ms(5))
        net.tcp_connection(net.route([a, b]), total_bytes=1000)
        assert len(net.connections) == 1
