"""Link-failure resilience, fairness metrics, and flow-tracer tests."""

import pytest

from repro.analysis.fairness import friendliness_ratio, jain_index, share_summary
from repro.errors import ConfigurationError
from repro.net.network import Network
from repro.net.queues import DropTailQueue
from repro.net.trace import FlowTracer
from repro.units import mbps, mib, ms


def two_path_net(seed=1):
    net = Network(seed=seed)
    a, b = net.add_host("a"), net.add_host("b")
    routes, bottlenecks = [], []
    for i in range(2):
        s = net.add_switch(f"s{i}")
        net.link(a, s, rate_bps=mbps(100), delay=ms(5),
                 queue_factory=lambda: DropTailQueue(limit_packets=100))
        fwd, _ = net.link(s, b, rate_bps=mbps(100), delay=ms(5),
                          queue_factory=lambda: DropTailQueue(limit_packets=100))
        routes.append(net.route([a, s, b]))
        bottlenecks.append(fwd)
    return net, routes, bottlenecks


class TestLinkFailure:
    def test_failed_link_blackholes(self):
        net, routes, bottlenecks = two_path_net()
        conn = net.tcp_connection(routes[0], total_bytes=None)
        conn.start()
        net.run(until=2.0)
        delivered_before = conn.supply.acked
        bottlenecks[0].fail()
        net.run(until=4.0)
        # Nothing new delivered after the blackhole (a handful in flight
        # at the instant of failure may still land).
        assert conn.supply.acked <= delivered_before + 200
        assert bottlenecks[0].failure_drops > 0

    def test_mptcp_survives_single_path_failure(self):
        net, routes, bottlenecks = two_path_net()
        conn = net.connection(routes, "lia", total_bytes=None)
        conn.start()
        net.run(until=3.0)
        bottlenecks[0].fail()
        acked_at_failure = conn.supply.acked
        net.run(until=10.0)
        delivered_after = (conn.supply.acked - acked_at_failure) * 1460 * 8 / 7.0
        # The surviving path keeps the connection going near its capacity.
        assert delivered_after > mbps(50)

    def test_single_path_tcp_stalls_on_failure(self):
        net, routes, bottlenecks = two_path_net()
        conn = net.tcp_connection(routes[0], total_bytes=None)
        conn.start()
        net.run(until=3.0)
        bottlenecks[0].fail()
        acked_at_failure = conn.supply.acked
        net.run(until=10.0)
        assert conn.supply.acked - acked_at_failure < 300

    def test_restore_resumes_traffic(self):
        net, routes, bottlenecks = two_path_net()
        conn = net.tcp_connection(routes[0], total_bytes=None)
        conn.start()
        net.run(until=2.0)
        bottlenecks[0].fail()
        net.run(until=4.0)
        bottlenecks[0].restore()
        acked_at_restore = conn.supply.acked
        net.run(until=12.0)
        # RTO backoff delays the comeback, but traffic must resume.
        assert conn.supply.acked > acked_at_restore + 500

    def test_failure_drains_queue(self):
        net, routes, bottlenecks = two_path_net()
        conn = net.tcp_connection(routes[0], total_bytes=None)
        conn.start()
        net.run(until=1.0)
        link = bottlenecks[0]
        link.queue.push_count = None  # no-op guard; queue may be non-empty
        link.fail()
        assert link.queue.occupancy() == 0


class TestFairnessMetrics:
    def test_jain_equal_allocations(self):
        assert jain_index([5, 5, 5, 5]) == pytest.approx(1.0)

    def test_jain_single_hog(self):
        assert jain_index([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_jain_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            jain_index([])

    def test_jain_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            jain_index([-1, 2])

    def test_jain_all_zero_is_fair(self):
        assert jain_index([0, 0]) == 1.0

    def test_share_summary(self):
        shares = share_summary({"a": 30.0, "b": 70.0})
        assert shares["a"] == pytest.approx(0.3)
        assert shares["b"] == pytest.approx(0.7)

    def test_share_summary_zero_total_rejected(self):
        with pytest.raises(ConfigurationError):
            share_summary({"a": 0.0})

    def test_friendliness_ratio(self):
        assert friendliness_ratio(mbps(90), mbps(45)) == pytest.approx(2.0)
        with pytest.raises(ConfigurationError):
            friendliness_ratio(1.0, 0.0)

    def test_simulated_fairness_on_shared_link(self):
        net = Network(seed=3)
        a, b = net.add_host("a"), net.add_host("b")
        s = net.add_switch("s")
        net.link(a, s, rate_bps=mbps(200), delay=ms(5))
        net.link(s, b, rate_bps=mbps(100), delay=ms(5),
                 queue_factory=lambda: DropTailQueue(limit_packets=80))
        route = net.route([a, s, b])
        conns = [net.tcp_connection(route, total_bytes=None) for _ in range(3)]
        for i, c in enumerate(conns):
            c.start(0.05 * i)
        net.run(until=30.0)
        goodputs = [c.aggregate_goodput_bps(elapsed=25.0) for c in conns]
        assert jain_index(goodputs) > 0.85


class TestFlowTracer:
    def test_records_sends_and_acks(self):
        net, routes, _ = two_path_net()
        conn = net.connection(routes, "lia", total_bytes=500_000)
        tracer = FlowTracer(conn)
        conn.start()
        net.run_until_complete([conn], timeout=60)
        assert tracer.count("send") >= conn.supply.total
        assert tracer.count("ack") > 0
        assert tracer.first("send").time <= tracer.first("ack").time

    def test_records_loss_and_recovery_cycle(self):
        net = Network(seed=5)
        a, b = net.add_host("a"), net.add_host("b")
        net.link(a, b, rate_bps=mbps(50), delay=ms(10),
                 queue_factory=lambda: DropTailQueue(limit_packets=15))
        conn = net.tcp_connection(net.route([a, b]), total_bytes=mib(2))
        tracer = FlowTracer(conn)
        conn.start()
        net.run_until_complete([conn], timeout=60)
        assert tracer.count("loss") > 0
        assert tracer.count("recovery-exit") >= 1
        assert tracer.count("retransmit") > 0
        first_loss = tracer.first("loss")
        first_exit = tracer.first("recovery-exit")
        assert first_loss.time < first_exit.time

    def test_bounded_ring(self):
        net, routes, _ = two_path_net()
        conn = net.connection(routes, "lia", total_bytes=500_000)
        tracer = FlowTracer(conn, max_events=100)
        conn.start()
        net.run_until_complete([conn], timeout=60)
        assert len(tracer.events) == 100

    def test_summary_counts(self):
        net, routes, _ = two_path_net()
        conn = net.connection(routes, "lia", total_bytes=200_000)
        tracer = FlowTracer(conn)
        conn.start()
        net.run_until_complete([conn], timeout=60)
        summary = tracer.summary()
        assert summary["send"] == tracer.count("send")
        assert sum(summary.values()) == len(tracer.events)
