"""Single-subflow TCP machinery tests."""

import pytest

from repro.errors import ConfigurationError
from repro.net.flow import SegmentSupply
from repro.net.network import Network
from repro.net.queues import DropTailQueue
from repro.units import mb, mbps, mib, ms


def single_path_net(*, rate=mbps(100), delay=ms(10), queue=100, loss=0.0,
                    seed=1):
    net = Network(seed=seed)
    a, b = net.add_host("a"), net.add_host("b")
    s = net.add_switch("s")
    net.link(a, s, rate_bps=rate, delay=delay / 2,
             queue_factory=lambda: DropTailQueue(limit_packets=queue))
    net.link(s, b, rate_bps=rate, delay=delay / 2,
             queue_factory=lambda: DropTailQueue(limit_packets=queue),
             loss_rate=loss)
    return net, net.route([a, s, b])


class TestSegmentSupply:
    def test_finite_supply_exhausts(self):
        supply = SegmentSupply(3)
        assert [supply.take() for _ in range(4)] == [True, True, True, False]

    def test_infinite_supply_never_exhausts(self):
        supply = SegmentSupply(None)
        assert all(supply.take() for _ in range(1000))
        assert not supply.completed

    def test_completion_records_time_once(self):
        supply = SegmentSupply(2)
        supply.take(), supply.take()
        supply.note_acked(1, now=1.0)
        assert supply.completion_time is None
        supply.note_acked(1, now=2.0)
        assert supply.completion_time == 2.0
        supply.note_acked(1, now=3.0)
        assert supply.completion_time == 2.0

    def test_completion_callback_fires(self):
        supply = SegmentSupply(1)
        fired = []
        supply.on_complete = fired.append
        supply.take()
        supply.note_acked(1, now=5.0)
        assert fired == [5.0]

    def test_invalid_total_rejected(self):
        with pytest.raises(ConfigurationError):
            SegmentSupply(0)


class TestBasicTransfer:
    def test_transfer_completes(self):
        net, route = single_path_net()
        conn = net.tcp_connection(route, total_bytes=mib(2))
        conn.start()
        net.run_until_complete([conn], timeout=60)
        assert conn.completed

    def test_goodput_approaches_capacity_for_long_transfer(self):
        net, route = single_path_net()
        conn = net.tcp_connection(route, total_bytes=mb(20))
        conn.start()
        net.run_until_complete([conn], timeout=60)
        assert conn.aggregate_goodput_bps() > mbps(60)

    def test_goodput_not_above_capacity(self):
        net, route = single_path_net()
        conn = net.tcp_connection(route, total_bytes=mb(20))
        conn.start()
        net.run_until_complete([conn], timeout=60)
        assert conn.aggregate_goodput_bps() <= mbps(100) * 1.01

    def test_cannot_start_twice(self):
        net, route = single_path_net()
        conn = net.tcp_connection(route, total_bytes=mib(1))
        conn.start()
        with pytest.raises(ConfigurationError):
            conn.subflows[0].start()

    def test_receiver_sees_all_bytes(self):
        net, route = single_path_net()
        conn = net.tcp_connection(route, total_bytes=mib(1))
        conn.start()
        net.run_until_complete([conn], timeout=60)
        sf = conn.subflows[0]
        assert sf.receiver.rcv_next == sf.supply.total


class TestRttEstimation:
    def test_base_rtt_close_to_propagation(self):
        net, route = single_path_net(delay=ms(30))
        conn = net.tcp_connection(route, total_bytes=mib(1))
        conn.start()
        net.run_until_complete([conn], timeout=60)
        sf = conn.subflows[0]
        assert sf.base_rtt == pytest.approx(route.base_rtt(), rel=0.05)

    def test_srtt_positive_and_at_least_base(self):
        net, route = single_path_net(delay=ms(30))
        conn = net.tcp_connection(route, total_bytes=mib(1))
        conn.start()
        net.run_until_complete([conn], timeout=60)
        sf = conn.subflows[0]
        assert sf.srtt >= sf.base_rtt * 0.99

    def test_rto_at_least_minimum(self):
        net, route = single_path_net()
        conn = net.tcp_connection(route, total_bytes=mib(1))
        conn.start()
        net.run_until_complete([conn], timeout=60)
        assert conn.subflows[0].rto >= 0.2


class TestLossRecovery:
    def test_random_loss_triggers_fast_retransmit_not_only_timeouts(self):
        net, route = single_path_net(loss=0.01, seed=3)
        conn = net.tcp_connection(route, total_bytes=mib(4))
        conn.start()
        net.run_until_complete([conn], timeout=120)
        sf = conn.subflows[0]
        assert conn.completed
        assert sf.fast_retransmits > 0
        assert sf.fast_retransmits > sf.timeouts

    def test_transfer_completes_under_heavy_loss(self):
        net, route = single_path_net(loss=0.05, seed=5)
        conn = net.tcp_connection(route, total_bytes=mib(1))
        conn.start()
        net.run_until_complete([conn], timeout=300)
        assert conn.completed

    def test_loss_reduces_cwnd(self):
        net, route = single_path_net(loss=0.02, seed=2)
        conn = net.tcp_connection(route, total_bytes=mib(2))
        conn.start()
        net.run_until_complete([conn], timeout=120)
        sf = conn.subflows[0]
        assert sf.loss_events > 0
        # ssthresh reflects the last decrease, far below the initial 1e12.
        assert sf.ssthresh < 1e6

    def test_retransmissions_bounded_by_reasonable_overhead(self):
        net, route = single_path_net(loss=0.01, seed=4)
        conn = net.tcp_connection(route, total_bytes=mib(4))
        conn.start()
        net.run_until_complete([conn], timeout=120)
        total_segments = conn.subflows[0].supply.total
        assert conn.total_retransmissions() < 0.25 * total_segments

    def test_queue_overflow_recovery(self):
        # Tiny queue forces real congestion losses; transfer must finish.
        net, route = single_path_net(queue=10, seed=6)
        conn = net.tcp_connection(route, total_bytes=mib(2))
        conn.start()
        net.run_until_complete([conn], timeout=120)
        assert conn.completed
        assert conn.total_loss_events() > 0


class TestReceiveWindow:
    def test_rwnd_caps_throughput(self):
        net, route = single_path_net(delay=ms(100))
        # 64 KB window over 100 ms RTT caps at ~5 Mbps.
        conn = net.tcp_connection(route, total_bytes=mib(2),
                                  rcv_buffer_bytes=64 * 1024)
        conn.start()
        net.run_until_complete([conn], timeout=120)
        limit = 64 * 1024 * 8 / 0.1
        assert conn.aggregate_goodput_bps() <= limit * 1.1

    def test_inflight_never_exceeds_rwnd(self):
        net, route = single_path_net()
        conn = net.tcp_connection(route, total_bytes=mib(1),
                                  rcv_buffer_bytes=32 * 1460)
        sf = conn.subflows[0]
        conn.start()
        limit = 32
        while not conn.completed and net.sim.pending():
            net.run(until=net.sim.now + 0.05)
            assert sf.inflight <= limit + 1


class TestSlowStart:
    def test_window_grows_exponentially_initially(self):
        net, route = single_path_net(delay=ms(40))
        conn = net.tcp_connection(route, total_bytes=mb(8))
        conn.start()
        net.run(until=0.25)  # a few RTTs
        # From IW=2, several doublings should have happened.
        assert conn.subflows[0].cwnd >= 8

    def test_hystart_exits_before_catastrophic_overshoot(self):
        net, route = single_path_net(delay=ms(10), queue=1000)
        conn = net.tcp_connection(route, total_bytes=mb(20))
        conn.start()
        net.run_until_complete([conn], timeout=60)
        sf = conn.subflows[0]
        # With a huge queue and delay-based exit, slow start should end
        # without a mass-loss event.
        assert sf.timeouts == 0
