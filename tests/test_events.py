"""Event queue / simulator clock tests."""

import pytest

from repro.errors import SimulationError
from repro.net.events import Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    seen = []
    sim.schedule(0.3, seen.append, "c")
    sim.schedule(0.1, seen.append, "a")
    sim.schedule(0.2, seen.append, "b")
    sim.run()
    assert seen == ["a", "b", "c"]


def test_ties_run_in_schedule_order():
    sim = Simulator()
    seen = []
    for tag in ("first", "second", "third"):
        sim.schedule(1.0, seen.append, tag)
    sim.run()
    assert seen == ["first", "second", "third"]


def test_clock_advances_to_event_time():
    sim = Simulator()
    sim.schedule(2.5, lambda: None)
    sim.run()
    assert sim.now == pytest.approx(2.5)


def test_run_until_stops_clock_at_bound():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.schedule(5.0, lambda: None)
    sim.run(until=2.0)
    assert sim.now == pytest.approx(2.0)
    assert sim.pending() == 1


def test_event_at_exact_until_runs():
    sim = Simulator()
    seen = []
    sim.schedule(2.0, seen.append, "x")
    sim.run(until=2.0)
    assert seen == ["x"]


def test_cancelled_event_skipped():
    sim = Simulator()
    seen = []
    handle = sim.schedule(1.0, seen.append, "x")
    handle.cancel()
    sim.run()
    assert seen == []


def test_cannot_schedule_in_past():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_max_events_guard():
    sim = Simulator()

    def reschedule():
        sim.schedule(0.001, reschedule)

    sim.schedule(0.001, reschedule)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_events_processed_counter():
    sim = Simulator()
    for _ in range(5):
        sim.schedule(0.1, lambda: None)
    sim.run()
    assert sim.events_processed == 5


def test_rng_is_seeded_deterministically():
    a = Simulator(seed=7).rng.random(4)
    b = Simulator(seed=7).rng.random(4)
    assert list(a) == list(b)


def test_events_can_schedule_more_events():
    sim = Simulator()
    seen = []

    def outer():
        seen.append("outer")
        sim.schedule(0.5, seen.append, "inner")

    sim.schedule(1.0, outer)
    sim.run()
    assert seen == ["outer", "inner"]
    assert sim.now == pytest.approx(1.5)


def test_run_until_with_empty_queue_sets_clock():
    sim = Simulator()
    sim.run(until=3.0)
    assert sim.now == pytest.approx(3.0)
