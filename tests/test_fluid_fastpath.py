"""Equivalence tests for the fluid-engine fast path.

The PR-5 optimisations (sparse routing kernels, preallocated step
buffers, chunked RNG) are *behaviour-preserving*: with the same network,
seed, and knobs, ``fast_path=True`` must produce bit-identical results
to the legacy reference loop — every ``SimulationResult`` array, the
``fluid.residual`` gauge, the ``fluid.step`` trace instants, and the
final RNG state. These tests pin that down under random topologies,
algorithm mixes, seeds, and knob combinations, and also cover the
kernel-selection logic and the chunked-RNG facade in isolation.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro.fluidsim.engine as engine_mod
import repro.obs as obs
from repro.errors import ConfigurationError
from repro.fluidsim import FluidNetwork, FluidSimulation
from repro.fluidsim.network import RoutingPlan
from repro.net.rand import UniformBlocks
from repro.topology import FatTree
from repro.units import ms

# ------------------------------------------------------------------ helpers

#: Algorithm pool for random cohort mixes (aliases included on purpose —
#: they must land in the same cohort as their canonical name).
ALGORITHMS = ["reno", "ewtcp", "coupled", "lia", "olia", "balia",
              "ecmtcp", "wvegas", "dctcp", "dts", "dts-ext"]


def _build_net(pair_seed: int, algo_picks, n_subflows: int) -> FluidNetwork:
    """A small fat-tree network with len(algo_picks) random connections.

    Each call with the same arguments builds an identical network; a
    fresh one is needed per simulation because algorithm adapters may
    hold per-run state (e.g. DCTCP's alpha estimator).
    """
    topo = FatTree(4, link_delay=ms(1))
    rng = np.random.default_rng(pair_seed)
    hosts = list(topo.hosts)
    net = FluidNetwork(topo, path_seed=pair_seed)
    for algo in algo_picks:
        src, dst = rng.choice(len(hosts), size=2, replace=False)
        net.add_connection(hosts[int(src)], hosts[int(dst)], algo,
                           n_subflows=n_subflows)
    net.finalize()
    return net


def _run(net: FluidNetwork, *, fast_path: bool, seed: int, n_steps: int,
         energy_sample_every: int = 10, sparse_routing: str = "auto"):
    """Run one sim; returns (result, registry snapshot, fluid.step records,
    final RNG state)."""
    registry = obs.MetricsRegistry()
    tracer = obs.Tracer()
    dt = 0.004
    sim = FluidSimulation(net, dt=dt, seed=seed, metrics=registry,
                          tracer=tracer, fast_path=fast_path,
                          sparse_routing=sparse_routing,
                          energy_sample_every=energy_sample_every)
    res = sim.run(n_steps * dt)
    steps = [r for r in tracer.records if r["name"] == "fluid.step"]
    return res, registry.snapshot(), steps, sim.rng.bit_generator.state


def _assert_bit_identical(got, want):
    """Every SimulationResult field byte-identical (floats compared as
    bits, not approximately)."""
    assert got.duration == want.duration
    for name in ("connection_goodput_bps", "connection_bits", "loss_events",
                 "mean_rtt", "mean_utilization"):
        g, w = getattr(got, name), getattr(want, name)
        assert g.tobytes() == w.tobytes(), f"{name} differs"
    for name in ("host_energy_j", "switch_energy_j"):
        assert getattr(got, name) == getattr(want, name), f"{name} differs"
    for name in ("sample_times", "sample_goodput_bps", "sample_power_w"):
        assert getattr(got, name) == getattr(want, name), f"{name} differs"


def _eq_args(a: dict, b: dict) -> bool:
    """Dict equality where nan == nan (residual is nan on step 0)."""
    if a.keys() != b.keys():
        return False
    for k, va in a.items():
        vb = b[k]
        if isinstance(va, float) and isinstance(vb, float):
            if np.isnan(va) and np.isnan(vb):
                continue
            if va != vb:
                return False
        elif va != vb:
            return False
    return True


def _assert_runs_equivalent(fast, legacy):
    res_f, snap_f, steps_f, rng_f = fast
    res_l, snap_l, steps_l, rng_l = legacy
    _assert_bit_identical(res_f, res_l)
    # Metrics snapshots match except wall time (legitimately differs).
    for snap in (snap_f, snap_l):
        snap.pop("engine.wall_time_s", None)
    keys = set(snap_f) | set(snap_l)
    for key in sorted(keys):
        vf, vl = snap_f.get(key), snap_l.get(key)
        if isinstance(vf, float) and isinstance(vl, float) \
                and np.isnan(vf) and np.isnan(vl):
            continue
        assert vf == vl, f"metric {key}: {vf!r} != {vl!r}"
    # Same per-step trace instants (ts/depth are wall-clock artefacts).
    assert len(steps_f) == len(steps_l)
    for rf, rl in zip(steps_f, steps_l):
        assert _eq_args(rf["args"], rl["args"]), (rf["args"], rl["args"])
    # The fast path must consume the RNG stream exactly like the legacy
    # per-step draws, leaving the generator in the same state.
    assert rng_f == rng_l


# ------------------------------------------------- fast vs legacy property


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    pair_seed=st.integers(0, 10_000),
    algo_picks=st.lists(st.sampled_from(ALGORITHMS), min_size=1, max_size=4),
    n_subflows=st.integers(1, 4),
    seed=st.integers(0, 50),
    n_steps=st.integers(2, 40),
    energy_sample_every=st.integers(1, 13),
    sparse_routing=st.sampled_from(["auto", "always", "never"]),
)
def test_fast_path_bit_identical_to_legacy(pair_seed, algo_picks, n_subflows,
                                           seed, n_steps,
                                           energy_sample_every,
                                           sparse_routing):
    """Random topology/algorithm/seed/knob combinations: the fast path is
    indistinguishable from the legacy loop, bit for bit."""
    fast = _run(_build_net(pair_seed, algo_picks, n_subflows),
                fast_path=True, seed=seed, n_steps=n_steps,
                energy_sample_every=energy_sample_every,
                sparse_routing=sparse_routing)
    legacy = _run(_build_net(pair_seed, algo_picks, n_subflows),
                  fast_path=False, seed=seed, n_steps=n_steps,
                  energy_sample_every=energy_sample_every,
                  sparse_routing=sparse_routing)
    _assert_runs_equivalent(fast, legacy)


def test_bincount_fallback_bit_identical(monkeypatch):
    """With scipy's private csr_matvec unavailable, the pure-numpy
    gather+bincount kernel must still match the legacy loop exactly."""
    monkeypatch.setattr(engine_mod, "_csr_matvec", None)
    net = _build_net(7, ["lia", "olia", "dctcp"], 3)
    sim = FluidSimulation(net, dt=0.004, seed=3)
    assert sim.kernel == "bincount"
    fast = _run(net, fast_path=True, seed=3, n_steps=30)
    legacy = _run(_build_net(7, ["lia", "olia", "dctcp"], 3),
                  fast_path=False, seed=3, n_steps=30)
    _assert_runs_equivalent(fast, legacy)


def test_interleaved_fast_and_legacy_runs_share_one_sim():
    """run() can alternate paths on one sim object: the fast path's view
    buffers must rebind after a legacy run rebinds self.rtt."""
    net_a = _build_net(11, ["lia", "balia"], 2)
    net_b = _build_net(11, ["lia", "balia"], 2)
    sim = FluidSimulation(net_a, dt=0.004, seed=5)
    ref = FluidSimulation(net_b, dt=0.004, seed=5, fast_path=False)
    for _ in range(3):
        got = sim.run(20 * 0.004)
        want = ref.run(20 * 0.004)
        _assert_bit_identical(got, want)
        # Flip the path for the next round (knob is honoured per run()).
        sim.fast_path = not sim.fast_path


# --------------------------------------------------------- kernel selection


def test_sparse_routing_never_uses_dense_kernel():
    net = _build_net(1, ["lia"], 2)
    sim = FluidSimulation(net, dt=0.004, seed=1, sparse_routing="never")
    assert sim.kernel == "dense"


def test_sparse_routing_auto_prefers_sparse_on_fattree():
    net = _build_net(1, ["lia"], 2)
    assert net.routing_plan.density <= engine_mod._SPARSE_DENSITY_THRESHOLD
    sim = FluidSimulation(net, dt=0.004, seed=1)
    assert sim.kernel in ("csr_matvec", "bincount")


def test_sparse_routing_auto_falls_back_when_dense():
    """Density above the threshold (tiny 2-host topology: every subflow
    crosses most links) keeps the scipy operators in auto mode, while
    "always" still forces the sparse kernel."""
    from tests.test_fluidsim import tiny_topology

    net = FluidNetwork(tiny_topology())
    net.add_connection("a", "b", "lia", n_subflows=1)
    net.finalize()
    assert net.routing_plan.density > engine_mod._SPARSE_DENSITY_THRESHOLD
    assert FluidSimulation(net, dt=0.004, seed=1).kernel == "dense"
    forced = FluidSimulation(net, dt=0.004, seed=1, sparse_routing="always")
    assert forced.kernel in ("csr_matvec", "bincount")


def test_sparse_routing_requires_unit_weights():
    """Non-unit stored weights make the gather kernels invalid; even
    "always" must fall back to dense."""
    net = _build_net(1, ["lia"], 2)
    net.routing.data[0] = 2.0
    net.routing_plan = RoutingPlan.from_routing(net.routing, net.routing_t)
    assert not net.routing_plan.unit_weights
    sim = FluidSimulation(net, dt=0.004, seed=1, sparse_routing="always")
    assert sim.kernel == "dense"


def test_invalid_sparse_routing_mode_rejected():
    net = _build_net(1, ["lia"], 1)
    with pytest.raises(ConfigurationError, match="sparse_routing"):
        FluidSimulation(net, dt=0.004, seed=1, sparse_routing="sometimes")


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), n_links=st.integers(1, 12),
       n_subflows=st.integers(1, 12))
def test_routing_plan_kernels_match_scipy(seed, n_links, n_subflows):
    """The gather+bincount evaluation of R@x and R.T@v over RoutingPlan
    index arrays is bit-identical to scipy's CSR products for random
    unit-weight incidence matrices."""
    from scipy import sparse

    rng = np.random.default_rng(seed)
    mask = rng.random((n_links, n_subflows)) < 0.3
    rows, cols = np.nonzero(mask)  # unique pairs by construction
    routing = sparse.csr_matrix(
        (np.ones(len(rows)), (rows, cols)), shape=(n_links, n_subflows))
    routing_t = routing.T.tocsr()
    plan = RoutingPlan.from_routing(routing, routing_t)
    assert plan.unit_weights
    x = rng.standard_normal(n_subflows) * 1e9
    v = rng.standard_normal(n_links)
    y = np.bincount(plan.link_of_nnz, weights=x[plan.sub_gather],
                    minlength=n_links)
    z = np.bincount(plan.sub_of_nnz, weights=v[plan.link_gather],
                    minlength=n_subflows)
    assert y.tobytes() == (routing @ x).tobytes()
    assert z.tobytes() == (routing_t @ v).tobytes()


# ------------------------------------------------------------- chunked RNG


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000), width=st.integers(1, 20),
       total=st.integers(1, 100), block=st.integers(1, 17))
def test_uniform_blocks_stream_identity(seed, width, total, block):
    """UniformBlocks yields the exact rows ``rng.random(width)`` would,
    in order, and leaves the bit generator in the same state."""
    blocked = UniformBlocks(np.random.default_rng(seed), width, total,
                            rows_per_block=block)
    ref = np.random.default_rng(seed)
    for _ in range(total):
        row = blocked.next_row()
        assert row.tobytes() == ref.random(width).tobytes()
    assert (blocked.rng.bit_generator.state == ref.bit_generator.state)


def test_uniform_blocks_exhaustion_and_refills():
    blocked = UniformBlocks(np.random.default_rng(0), 4, 10, rows_per_block=4)
    for _ in range(10):
        blocked.next_row()
    assert blocked.refills == 3  # 4 + 4 + 2 rows
    with pytest.raises(ConfigurationError):
        blocked.next_row()


def test_uniform_blocks_validates_arguments():
    rng = np.random.default_rng(0)
    with pytest.raises(ConfigurationError):
        UniformBlocks(rng, -1, 10)
    with pytest.raises(ConfigurationError):
        UniformBlocks(rng, 4, -1)
    with pytest.raises(ConfigurationError):
        UniformBlocks(rng, 4, 10, rows_per_block=0)
