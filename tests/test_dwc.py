"""DWC (Dynamic Window Coupling) tests."""

import pytest

from repro.algorithms import DwcController, create_controller
from repro.net.network import Network
from repro.net.queues import DropTailQueue
from repro.units import mbps, ms


def shared_bottleneck(seed=1):
    """Both MPTCP subflows and a TCP flow through ONE bottleneck link."""
    net = Network(seed=seed)
    mp, tcp, srv = net.add_host("mp"), net.add_host("tcp"), net.add_host("srv")
    left, right = net.add_switch("L"), net.add_switch("R")
    net.link(mp, left, rate_bps=mbps(1000), delay=ms(1))
    net.link(tcp, left, rate_bps=mbps(1000), delay=ms(1))
    net.link(left, right, rate_bps=mbps(100), delay=ms(10),
             queue_factory=lambda: DropTailQueue(limit_packets=120))
    net.link(right, srv, rate_bps=mbps(1000), delay=ms(1))
    mp_route = net.route([mp, left, right, srv])
    tcp_route = net.route([tcp, left, right, srv])
    return net, mp_route, tcp_route


def disjoint_paths(seed=1):
    """Two fully disjoint bottlenecks."""
    net = Network(seed=seed)
    a, b = net.add_host("a"), net.add_host("b")
    routes = []
    for i in range(2):
        s = net.add_switch(f"s{i}")
        net.link(a, s, rate_bps=mbps(100), delay=ms(10),
                 queue_factory=lambda: DropTailQueue(limit_packets=100))
        net.link(s, b, rate_bps=mbps(100), delay=ms(10),
                 queue_factory=lambda: DropTailQueue(limit_packets=100))
        routes.append(net.route([a, s, b]))
    return net, routes


def test_registered():
    assert create_controller("dwc").name == "dwc"


def test_starts_ungrouped():
    net, routes = disjoint_paths()
    conn = net.connection(routes, "dwc", total_bytes=None)
    ctrl = conn.controller
    assert ctrl.group_of(conn.subflows[0]) != ctrl.group_of(conn.subflows[1])


def test_groups_merge_on_repeatedly_correlated_losses():
    net, routes = disjoint_paths()
    conn = net.connection(routes, DwcController(merge_confirmations=2),
                          total_bytes=None)
    ctrl = conn.controller
    a, b = conn.subflows
    ctrl.on_loss(a)
    ctrl.on_loss(b)  # first correlated pair: still separate
    assert ctrl.group_of(a) != ctrl.group_of(b)
    ctrl.on_loss(a)
    ctrl.on_loss(b)  # second confirmation: merged
    assert ctrl.group_of(a) == ctrl.group_of(b)


def test_single_coincidence_does_not_merge():
    net, routes = disjoint_paths()
    conn = net.connection(routes, "dwc", total_bytes=None)
    ctrl = conn.controller
    a, b = conn.subflows
    ctrl.on_loss(a)
    ctrl.on_loss(b)
    assert ctrl.group_of(a) != ctrl.group_of(b)


def test_disjoint_paths_stay_ungrouped_and_pool_capacity():
    net, routes = disjoint_paths()
    conn = net.connection(routes, "dwc", total_bytes=None)
    conn.start()
    net.run(until=20.0)
    goodput = conn.aggregate_goodput_bps(elapsed=20.0)
    # Ungrouped DWC runs Reno per path: near 2x a single path.
    assert goodput > mbps(140)


def test_shared_bottleneck_detected_and_friendly():
    net, mp_route, tcp_route = shared_bottleneck()
    mptcp = net.connection([mp_route, mp_route], "dwc", total_bytes=None)
    tcp = net.tcp_connection(tcp_route, total_bytes=None)
    mptcp.start(0.0)
    tcp.start(0.1)
    net.run(until=30.0)
    ctrl = mptcp.controller
    a, b = mptcp.subflows
    # Correlated losses on the shared pipe must have merged the subflows.
    assert ctrl.group_of(a) == ctrl.group_of(b)
    tcp_goodput = tcp.aggregate_goodput_bps(elapsed=29.9)
    mp_goodput = mptcp.aggregate_goodput_bps(elapsed=30.0)
    # Coupled-once-grouped: TCP keeps a healthy share of the pipe.
    assert tcp_goodput > 0.3 * mp_goodput


def test_delay_condition_triggers_grouping():
    ctrl = DwcController(delay_threshold=0.2, merge_confirmations=1)
    net, routes = disjoint_paths()
    conn = net.connection(routes, ctrl, total_bytes=None)
    a, b = conn.subflows
    a.base_rtt = b.base_rtt = 0.04
    # Deliver inflated RTT samples to both subflows at the same time.
    ctrl.on_rtt(a, 0.08)
    ctrl.on_rtt(b, 0.08)
    assert ctrl.group_of(a) == ctrl.group_of(b)


def test_separation_after_quiet_period():
    net, routes = disjoint_paths()
    ctrl = DwcController(separation_timeout=0.5, merge_confirmations=1)
    conn = net.connection(routes, ctrl, total_bytes=None)
    a, b = conn.subflows
    ctrl.on_loss(a)
    ctrl.on_loss(b)
    assert ctrl.group_of(a) == ctrl.group_of(b)
    # b keeps seeing congestion; a stays quiet past the timeout.
    net.sim.schedule(2.0, lambda: None)
    net.run()
    ctrl._note_congestion(b, net.sim.now)
    ctrl._maybe_separate(a, net.sim.now)
    assert ctrl.group_of(a) != ctrl.group_of(b)


def test_grouped_increase_is_lia_like():
    net, routes = disjoint_paths()
    conn = net.connection(routes, DwcController(merge_confirmations=1),
                          total_bytes=None)
    ctrl = conn.controller
    a, b = conn.subflows
    a.cwnd = b.cwnd = 10.0
    a.srtt = b.srtt = 0.05
    ctrl.on_loss(a)
    ctrl.on_loss(b)  # grouped; windows now 5
    before = a.cwnd
    ctrl.on_ack(a)
    # Linked increase: best/(total rate)^2 with both members at w=5.
    best = 5 / 0.05**2
    total = 2 * 5 / 0.05
    assert a.cwnd - before == pytest.approx(min(best / total**2, 1 / 5))


def test_ungrouped_increase_is_reno():
    net, routes = disjoint_paths()
    conn = net.connection(routes, "dwc", total_bytes=None)
    ctrl = conn.controller
    a = conn.subflows[0]
    a.cwnd = 10.0
    ctrl.on_ack(a)
    assert a.cwnd == pytest.approx(10.1)
