"""Scenario-builder tests (Fig. 5a, Fig. 5b, heterogeneous wireless)."""

import pytest

from repro.errors import ConfigurationError
from repro.topology.dumbbell import build_shared_bottleneck, build_traffic_shifting
from repro.topology.wireless import build_wireless
from repro.units import kib, mb, mbps, mib


class TestSharedBottleneck:
    def test_structure(self):
        sc = build_shared_bottleneck(n_mptcp=3, algorithm="lia",
                                     transfer_bytes=mib(1), seed=1)
        assert len(sc.mptcp_connections) == 3
        assert len(sc.tcp_connections) == 6  # 2N
        assert len(sc.bottleneck_routes) == 2
        assert all(c.n_subflows == 2 for c in sc.mptcp_connections)
        assert all(c.n_subflows == 1 for c in sc.tcp_connections)

    def test_bottlenecks_are_the_switch_hops(self):
        sc = build_shared_bottleneck(n_mptcp=2, algorithm="lia",
                                     transfer_bytes=mib(1), seed=1)
        for route in sc.bottleneck_routes:
            assert route.min_rate() == mbps(100)
            rates = [l.rate_bps for l in route.forward]
            assert rates[1] == min(rates)

    def test_runs_to_completion(self):
        sc = build_shared_bottleneck(n_mptcp=2, algorithm="olia",
                                     transfer_bytes=400_000, seed=2)
        sc.start_all()
        sc.network.run_until_complete(
            sc.mptcp_connections + sc.tcp_connections, timeout=60
        )
        assert all(c.completed for c in sc.mptcp_connections)
        assert all(c.completed for c in sc.tcp_connections)

    def test_invalid_n_rejected(self):
        with pytest.raises(ConfigurationError):
            build_shared_bottleneck(n_mptcp=0, algorithm="lia",
                                    transfer_bytes=mib(1))

    def test_tcp_per_path_override(self):
        sc = build_shared_bottleneck(n_mptcp=2, n_tcp_per_path=1,
                                     algorithm="lia", transfer_bytes=mib(1))
        assert len(sc.tcp_connections) == 2


class TestTrafficShifting:
    def test_structure(self):
        sc = build_traffic_shifting(algorithm="lia", transfer_bytes=mb(1), seed=1)
        assert sc.connection.n_subflows == 2
        assert len(sc.burst_sources) == 2

    def test_runs_with_bursts(self):
        sc = build_traffic_shifting(algorithm="lia", transfer_bytes=None, seed=1,
                                    mean_burst_interval=0.5,
                                    mean_burst_duration=0.5)
        sc.start_all()
        sc.network.run(until=5.0)
        assert sum(s.packets_sent for s in sc.burst_sources) > 0
        assert sc.connection.supply.acked > 0

    def test_bursts_share_the_bottleneck(self):
        sc = build_traffic_shifting(algorithm="lia", transfer_bytes=None, seed=1)
        for src, route in zip(sc.burst_sources, sc.routes):
            bottleneck = route.forward[1]
            assert bottleneck in tuple(src.route.forward)


class TestWireless:
    def test_structure(self):
        sc = build_wireless(algorithm="lia", transfer_bytes=mb(1), seed=1)
        assert sc.connection.n_subflows == 2
        assert sc.wifi_route.min_rate() == mbps(10)
        assert sc.cellular_route.min_rate() == mbps(20)

    def test_delays(self):
        sc = build_wireless(algorithm="lia", transfer_bytes=mb(1), seed=1)
        assert sc.wifi_route.base_rtt() == pytest.approx(0.080)
        assert sc.cellular_route.base_rtt() == pytest.approx(0.200)

    def test_receive_buffer_respected(self):
        sc = build_wireless(algorithm="lia", transfer_bytes=mb(1), seed=1,
                            rcv_buffer_bytes=kib(64))
        limit = kib(64) // sc.connection.subflows[0].mss
        assert sc.connection.subflows[0].rwnd == limit

    def test_no_cross_traffic_option(self):
        sc = build_wireless(algorithm="lia", transfer_bytes=mb(1),
                            cross_fraction=0.0, seed=1)
        assert sc.cross_sources == []

    def test_runs_and_uses_both_paths(self):
        sc = build_wireless(algorithm="lia", transfer_bytes=None, seed=1,
                            rcv_buffer_bytes=None, cross_fraction=0.0)
        sc.start_all()
        sc.network.run(until=15.0)
        wifi, cell = sc.connection.subflows
        assert wifi.acked > 0 and cell.acked > 0

    def test_wireless_loss_present(self):
        sc = build_wireless(algorithm="lia", transfer_bytes=None, seed=3,
                            wifi_loss=0.01, cellular_loss=0.01,
                            cross_fraction=0.0, rcv_buffer_bytes=None)
        sc.start_all()
        sc.network.run(until=20.0)
        lossy = [l for l in sc.network.links if l.loss_rate > 0]
        assert sum(l.random_losses for l in lossy) > 0
