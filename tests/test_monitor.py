"""Sampler and monitor tests."""

import pytest

from repro.net.events import Simulator
from repro.net.monitor import FlowMonitor, LinkMonitor, PeriodicSampler
from repro.net.network import Network
from repro.net.queues import DropTailQueue
from repro.units import mbps, mib, ms


def test_sampler_cadence():
    sim = Simulator()
    ticks = []
    PeriodicSampler(sim, 0.5, ticks.append)
    sim.run(until=2.25)
    assert ticks == pytest.approx([0.5, 1.0, 1.5, 2.0])


def test_sampler_stop():
    sim = Simulator()
    ticks = []
    sampler = PeriodicSampler(sim, 0.5, ticks.append)
    sim.run(until=1.0)
    sampler.stop()
    sim.run(until=3.0)
    assert len(ticks) == 2


def test_sampler_until():
    sim = Simulator()
    ticks = []
    PeriodicSampler(sim, 0.5, ticks.append, until=1.4)
    sim.run(until=5.0)
    assert ticks == pytest.approx([0.5, 1.0])


def test_sampler_rejects_bad_interval():
    with pytest.raises(ValueError):
        PeriodicSampler(Simulator(), 0.0, lambda now: None)


def test_sampler_until_is_inclusive():
    # A tick landing exactly on `until` must fire despite float steps.
    sim = Simulator()
    ticks = []
    PeriodicSampler(sim, 0.1, ticks.append, until=0.5)
    sim.run(until=5.0)
    assert len(ticks) == 5
    assert ticks[-1] == pytest.approx(0.5)


def test_sampler_until_leaves_no_pending_event():
    sim = Simulator()
    sampler = PeriodicSampler(sim, 0.5, lambda now: None, until=1.4)
    sim.run(until=5.0)
    # After the last in-deadline tick nothing is left in the queue — the
    # old implementation scheduled one ghost tick past the deadline.
    assert sim.pending() == 0
    assert not sampler.stopped  # until-expiry is not the same as stop()


def test_sampler_until_shorter_than_interval_never_schedules():
    sim = Simulator()
    ticks = []
    PeriodicSampler(sim, 1.0, ticks.append, until=0.25)
    sim.run(until=5.0)
    assert ticks == []
    assert sim.pending() == 0


def test_sampler_stop_cancels_pending_event():
    sim = Simulator()
    ticks = []
    sampler = PeriodicSampler(sim, 0.5, ticks.append)
    sim.run(until=1.0)
    sampler.stop()
    assert sampler.stopped
    # The pending tick is cancelled immediately, not lazily skipped by
    # the sampler at fire time.
    assert all(e[2] is not None and e[2].cancelled for e in sim._heap)
    sim.run(until=3.0)
    assert len(ticks) == 2


def test_sampler_stop_from_inside_callback():
    sim = Simulator()
    ticks = []
    holder = {}

    def cb(now):
        ticks.append(now)
        if len(ticks) == 3:
            holder["sampler"].stop()

    holder["sampler"] = PeriodicSampler(sim, 0.5, cb)
    sim.run(until=10.0)
    assert len(ticks) == 3
    assert sim.pending() == 0


def test_sampler_stop_is_idempotent():
    sim = Simulator()
    sampler = PeriodicSampler(sim, 0.5, lambda now: None)
    sampler.stop()
    sampler.stop()
    sim.run(until=2.0)
    assert sampler.stopped


def _running_transfer():
    net = Network(seed=1)
    a, b = net.add_host("a"), net.add_host("b")
    s = net.add_switch("s")
    net.link(a, s, rate_bps=mbps(50), delay=ms(5),
             queue_factory=lambda: DropTailQueue(limit_packets=100))
    net.link(s, b, rate_bps=mbps(50), delay=ms(5),
             queue_factory=lambda: DropTailQueue(limit_packets=100))
    conn = net.tcp_connection(net.route([a, s, b]), total_bytes=mib(4))
    return net, conn


def test_flow_monitor_series_lengths_match():
    net, conn = _running_transfer()
    mon = FlowMonitor(net.sim, conn, interval=0.1)
    conn.start()
    net.run(until=1.0)
    assert len(mon.times) == len(mon.goodput_bps)
    assert len(mon.subflow_goodput_bps[0]) == len(mon.times)
    assert len(mon.subflow_rtt[0]) == len(mon.times)
    assert len(mon.subflow_cwnd[0]) == len(mon.times)


def test_flow_monitor_sees_throughput():
    net, conn = _running_transfer()
    mon = FlowMonitor(net.sim, conn, interval=0.1)
    conn.start()
    net.run(until=1.0)
    assert max(mon.goodput_bps) > 0


def test_flow_monitor_goodput_integrates_to_acked():
    net, conn = _running_transfer()
    mon = FlowMonitor(net.sim, conn, interval=0.1)
    conn.start()
    net.run(until=1.0)
    delivered_bits = sum(g * 0.1 for g in mon.goodput_bps)
    acked_bits = conn.supply.acked * conn.subflows[0].mss * 8
    assert delivered_bits == pytest.approx(acked_bits, rel=0.15)


def test_link_monitor_tracks_utilization():
    net, conn = _running_transfer()
    mon = LinkMonitor(net.sim, net.links, interval=0.1)
    conn.start()
    net.run(until=1.0)
    # The forward data links should show activity; occupancy recorded too.
    assert any(max(series) > 0 for series in mon.utilization)
    assert all(len(s) == len(mon.times) for s in mon.occupancy)


def test_link_monitor_utilization_bounded():
    net, conn = _running_transfer()
    mon = LinkMonitor(net.sim, net.links, interval=0.1)
    conn.start()
    net.run(until=1.0)
    assert all(0.0 <= u <= 1.0 for series in mon.utilization for u in series)
