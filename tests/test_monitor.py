"""Sampler and monitor tests."""

import pytest

from repro.net.events import Simulator
from repro.net.monitor import FlowMonitor, LinkMonitor, PeriodicSampler
from repro.net.network import Network
from repro.net.queues import DropTailQueue
from repro.units import mbps, mib, ms


def test_sampler_cadence():
    sim = Simulator()
    ticks = []
    PeriodicSampler(sim, 0.5, ticks.append)
    sim.run(until=2.25)
    assert ticks == pytest.approx([0.5, 1.0, 1.5, 2.0])


def test_sampler_stop():
    sim = Simulator()
    ticks = []
    sampler = PeriodicSampler(sim, 0.5, ticks.append)
    sim.run(until=1.0)
    sampler.stop()
    sim.run(until=3.0)
    assert len(ticks) == 2


def test_sampler_until():
    sim = Simulator()
    ticks = []
    PeriodicSampler(sim, 0.5, ticks.append, until=1.4)
    sim.run(until=5.0)
    assert ticks == pytest.approx([0.5, 1.0])


def test_sampler_rejects_bad_interval():
    with pytest.raises(ValueError):
        PeriodicSampler(Simulator(), 0.0, lambda now: None)


def _running_transfer():
    net = Network(seed=1)
    a, b = net.add_host("a"), net.add_host("b")
    s = net.add_switch("s")
    net.link(a, s, rate_bps=mbps(50), delay=ms(5),
             queue_factory=lambda: DropTailQueue(limit_packets=100))
    net.link(s, b, rate_bps=mbps(50), delay=ms(5),
             queue_factory=lambda: DropTailQueue(limit_packets=100))
    conn = net.tcp_connection(net.route([a, s, b]), total_bytes=mib(4))
    return net, conn


def test_flow_monitor_series_lengths_match():
    net, conn = _running_transfer()
    mon = FlowMonitor(net.sim, conn, interval=0.1)
    conn.start()
    net.run(until=1.0)
    assert len(mon.times) == len(mon.goodput_bps)
    assert len(mon.subflow_goodput_bps[0]) == len(mon.times)
    assert len(mon.subflow_rtt[0]) == len(mon.times)
    assert len(mon.subflow_cwnd[0]) == len(mon.times)


def test_flow_monitor_sees_throughput():
    net, conn = _running_transfer()
    mon = FlowMonitor(net.sim, conn, interval=0.1)
    conn.start()
    net.run(until=1.0)
    assert max(mon.goodput_bps) > 0


def test_flow_monitor_goodput_integrates_to_acked():
    net, conn = _running_transfer()
    mon = FlowMonitor(net.sim, conn, interval=0.1)
    conn.start()
    net.run(until=1.0)
    delivered_bits = sum(g * 0.1 for g in mon.goodput_bps)
    acked_bits = conn.supply.acked * conn.subflows[0].mss * 8
    assert delivered_bits == pytest.approx(acked_bits, rel=0.15)


def test_link_monitor_tracks_utilization():
    net, conn = _running_transfer()
    mon = LinkMonitor(net.sim, net.links, interval=0.1)
    conn.start()
    net.run(until=1.0)
    # The forward data links should show activity; occupancy recorded too.
    assert any(max(series) > 0 for series in mon.utilization)
    assert all(len(s) == len(mon.times) for s in mon.occupancy)


def test_link_monitor_utilization_bounded():
    net, conn = _running_transfer()
    mon = LinkMonitor(net.sim, net.links, interval=0.1)
    conn.start()
    net.run(until=1.0)
    assert all(0.0 <= u <= 1.0 for series in mon.utilization for u in series)
