"""Datacenter topology generator tests."""

import pytest

from repro.errors import ConfigurationError, RoutingError
from repro.topology import BCube, Ec2Cloud, FatTree, Vl2
from repro.topology.base import DcTopology, LinkSpec, PathSpec
from repro.units import gbps, mbps


def validate_paths(topo, paths, src, dst):
    """Every path must be link-contiguous from src to dst."""
    for path in paths:
        links = [topo.links[i] for i in path.link_indices]
        assert links[0].src == src
        assert links[-1].dst == dst
        for a, b in zip(links, links[1:]):
            assert a.dst == b.src


class TestFatTree:
    def test_paper_scale_counts(self):
        ft = FatTree(8)
        assert len(ft.hosts) == 128
        assert len(ft.switches) == 80

    def test_k4_counts(self):
        ft = FatTree(4)
        assert len(ft.hosts) == 16
        assert len(ft.switches) == 20

    def test_odd_k_rejected(self):
        with pytest.raises(ConfigurationError):
            FatTree(5)

    def test_cross_pod_path_count(self):
        ft = FatTree(4)
        paths = ft.paths(ft.hosts[0], ft.hosts[-1], 99)
        assert len(paths) == 4  # (k/2)^2

    def test_cross_pod_paths_valid(self):
        ft = FatTree(4)
        paths = ft.paths(ft.hosts[0], ft.hosts[-1], 99)
        validate_paths(ft, paths, ft.hosts[0], ft.hosts[-1])

    def test_same_edge_single_path(self):
        ft = FatTree(4)
        paths = ft.paths("h0_0_0", "h0_0_1", 99)
        assert len(paths) == 1
        assert len(paths[0].link_indices) == 2

    def test_same_pod_paths_via_aggregation(self):
        ft = FatTree(4)
        paths = ft.paths("h0_0_0", "h0_1_0", 99)
        assert len(paths) == 2  # k/2 aggregation choices
        validate_paths(ft, paths, "h0_0_0", "h0_1_0")

    def test_max_paths_respected(self):
        ft = FatTree(8)
        assert len(ft.paths(ft.hosts[0], ft.hosts[-1], 3)) == 3

    def test_same_host_rejected(self):
        ft = FatTree(4)
        with pytest.raises(ConfigurationError):
            ft.paths("h0_0_0", "h0_0_0", 4)

    def test_cross_pod_switch_hops(self):
        ft = FatTree(4)
        path = ft.paths(ft.hosts[0], ft.hosts[-1], 1)[0]
        assert path.switch_hops(ft.links) == 4


class TestVl2:
    def test_paper_scale_counts(self):
        vl2 = Vl2()
        assert len(vl2.hosts) == 128
        assert len(vl2.switches) == 80

    def test_fabric_faster_than_host_links(self):
        vl2 = Vl2()
        host_caps = {l.capacity_bps for l in vl2.links if l.kind in ("host-sw", "sw-host")}
        fabric_caps = {l.capacity_bps for l in vl2.links if l.kind == "sw-sw"}
        assert max(host_caps) < min(fabric_caps)

    def test_paths_are_valid(self):
        vl2 = Vl2()
        paths = vl2.paths(vl2.hosts[0], vl2.hosts[-1], 32)
        validate_paths(vl2, paths, vl2.hosts[0], vl2.hosts[-1])

    def test_no_duplicate_paths(self):
        vl2 = Vl2()
        paths = vl2.paths(vl2.hosts[0], vl2.hosts[-1], 64)
        keys = {p.link_indices for p in paths}
        assert len(keys) == len(paths)

    def test_same_tor_short_path(self):
        vl2 = Vl2()
        paths = vl2.paths("h0_0", "h0_1", 8)
        assert len(paths) == 1
        assert len(paths[0].link_indices) == 2

    def test_path_diversity_at_least_eight(self):
        vl2 = Vl2()
        paths = vl2.paths("h0_0", "h40_0", 8)
        assert len(paths) == 8


class TestBCube:
    def test_counts(self):
        bc = BCube(8, 1)
        assert len(bc.hosts) == 64
        assert len(bc.switches) == 16

    def test_bcube42_counts(self):
        bc = BCube(4, 2)
        assert len(bc.hosts) == 64
        assert len(bc.switches) == 48

    def test_all_links_touch_hosts(self):
        bc = BCube(4, 1)
        assert all(l.kind in ("host-sw", "sw-host") for l in bc.links)

    def test_host_digit_roundtrip(self):
        bc = BCube(4, 2)
        for name in bc.hosts[:8]:
            digits = bc.host_digits(name)
            assert bc._host_name[digits] == name

    def test_paths_valid(self):
        bc = BCube(4, 2)
        paths = bc.paths(bc.hosts[0], bc.hosts[-1], 8)
        validate_paths(bc, paths, bc.hosts[0], bc.hosts[-1])

    def test_relay_hosts_recorded(self):
        bc = BCube(4, 1)
        src, dst = "b00", "b11"  # differs in both digits -> needs a relay
        paths = bc.paths(src, dst, 2)
        assert all(p.relay_hosts for p in paths)
        for p in paths:
            assert src not in p.relay_hosts and dst not in p.relay_hosts

    def test_single_digit_difference_direct_path(self):
        bc = BCube(4, 1)
        paths = bc.paths("b00", "b01", 1)
        assert len(paths[0].link_indices) == 2
        assert not paths[0].relay_hosts

    def test_paths_distinct(self):
        bc = BCube(4, 2)
        paths = bc.paths(bc.hosts[0], bc.hosts[-1], 8)
        assert len({p.link_indices for p in paths}) == len(paths)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            BCube(1, 1)
        with pytest.raises(ConfigurationError):
            BCube(4, -1)


class TestEc2:
    def test_counts(self):
        ec2 = Ec2Cloud()
        assert len(ec2.hosts) == 40
        assert len(ec2.switches) == 4

    def test_four_disjoint_paths(self):
        ec2 = Ec2Cloud()
        paths = ec2.paths("vm0", "vm1", 4)
        assert len(paths) == 4
        first_links = {p.link_indices[0] for p in paths}
        assert len(first_links) == 4  # distinct ENIs

    def test_eni_capacity(self):
        ec2 = Ec2Cloud()
        path = ec2.paths("vm0", "vm1", 1)[0]
        assert path.min_capacity(ec2.links) == mbps(256)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Ec2Cloud(n_hosts=1)


class TestBaseHelpers:
    def test_duplicate_link_rejected(self):
        class Tiny(DcTopology):
            def paths(self, a, b, n):  # pragma: no cover
                return []

        t = Tiny()
        t.add_host("a")
        t.add_switch("s")
        t.add_duplex_link("a", "s", mbps(10), 0.001, "host-sw", "sw-host")
        with pytest.raises(RoutingError):
            t.add_duplex_link("a", "s", mbps(10), 0.001, "host-sw", "sw-host")

    def test_link_id_missing(self):
        class Tiny(DcTopology):
            def paths(self, a, b, n):  # pragma: no cover
                return []

        t = Tiny()
        with pytest.raises(RoutingError):
            t.link_id("x", "y")

    def test_pathspec_base_rtt(self):
        links = [LinkSpec("a", "s", mbps(10), 0.002, "host-sw"),
                 LinkSpec("s", "b", mbps(10), 0.003, "sw-host")]
        path = PathSpec((0, 1))
        assert path.base_rtt(links) == pytest.approx(0.010)

    def test_pathspec_switch_hops(self):
        links = [LinkSpec("a", "s", mbps(10), 0.002, "host-sw"),
                 LinkSpec("s", "t", mbps(10), 0.002, "sw-sw"),
                 LinkSpec("t", "b", mbps(10), 0.003, "sw-host")]
        assert PathSpec((0, 1, 2)).switch_hops(links) == 1

    def test_describe_mentions_counts(self):
        ft = FatTree(4)
        text = ft.describe()
        assert "16 hosts" in text and "20 switches" in text
