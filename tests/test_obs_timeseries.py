"""Live time-series tests: ring buffers and the registry recorder."""

import pytest

from repro.obs import MetricsRegistry, SeriesRecorder, TimeSeries
from repro.obs.timeseries import SERIES_SCHEMA


class FakeClock:
    def __init__(self, t0=100.0):
        self.t = t0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt
        return self.t


# ---------------------------------------------------------------- TimeSeries

def test_ring_appends_in_order():
    ts = TimeSeries("s", capacity=8)
    for i in range(5):
        ts.append(float(i), float(i) * 10)
    assert len(ts) == 5
    assert ts.points() == [(float(i), float(i) * 10) for i in range(5)]
    assert ts.last() == (4.0, 40.0)
    assert ts.dropped == 0


def test_ring_evicts_oldest_and_counts_drops():
    ts = TimeSeries("s", capacity=3)
    for i in range(7):
        ts.append(float(i), float(i))
    assert len(ts) == 3
    assert ts.points() == [(4.0, 4.0), (5.0, 5.0), (6.0, 6.0)]
    assert ts.dropped == 4


def test_ring_rejects_zero_capacity():
    with pytest.raises(ValueError):
        TimeSeries("s", capacity=0)


def test_merge_points_interleaves_by_timestamp():
    ts = TimeSeries("s", capacity=10)
    ts.append(1.0, 1.0)
    ts.append(3.0, 3.0)
    ts.merge_points([(2.0, 2.0), (4.0, 4.0)])
    assert [t for t, _ in ts.points()] == [1.0, 2.0, 3.0, 4.0]


def test_merge_points_respects_capacity():
    ts = TimeSeries("s", capacity=3)
    ts.append(5.0, 5.0)
    ts.merge_points([(float(i), float(i)) for i in range(5)])
    pts = ts.points()
    assert len(pts) == 3
    # The newest three survive the merge.
    assert [t for t, _ in pts] == [3.0, 4.0, 5.0]


# ------------------------------------------------------------ SeriesRecorder

def test_counter_needs_two_samples_for_a_rate():
    clock = FakeClock()
    reg = MetricsRegistry()
    c = reg.counter("net.packets")
    rec = SeriesRecorder(reg, interval=1.0, clock=clock)
    c.inc(10)
    rec.sample()
    assert "net.packets.rate" not in rec.series  # one look = no rate yet
    c.inc(20)
    clock.advance(2.0)
    rec.sample()
    ring = rec.series["net.packets.rate"]
    assert ring.last() == (clock.t, pytest.approx(10.0))  # 20 / 2 s


def test_gauge_records_value_and_histogram_records_percentiles():
    clock = FakeClock()
    reg = MetricsRegistry()
    reg.gauge("cwnd").set(12.5)
    h = reg.histogram("lat", buckets=(1.0, 2.0, 4.0))
    for v in (0.5, 1.5, 3.0):
        h.observe(v)
    rec = SeriesRecorder(reg, clock=clock)
    rec.sample()
    assert rec.series["cwnd"].last() == (clock.t, 12.5)
    for p in ("p50", "p95", "p99"):
        assert f"lat.{p}" in rec.series


def test_maybe_sample_honours_interval():
    clock = FakeClock()
    reg = MetricsRegistry()
    reg.gauge("g").set(1.0)
    rec = SeriesRecorder(reg, interval=1.0, clock=clock)
    assert rec.maybe_sample() is True
    clock.advance(0.4)
    assert rec.maybe_sample() is False
    clock.advance(0.7)
    assert rec.maybe_sample() is True
    assert rec.samples_taken == 2


def test_snapshot_carries_schema_kind_and_gauge_staleness(monkeypatch):
    from repro.obs.metrics import Gauge

    clock = FakeClock()
    monkeypatch.setattr(Gauge, "_clock", staticmethod(clock))
    reg = MetricsRegistry()
    g = reg.gauge("g")
    g.set(2.0)
    reg.counter("c").inc()
    rec = SeriesRecorder(reg, clock=clock)
    rec.sample()
    clock.advance(1.0)
    rec.sample()
    doc = rec.snapshot()
    assert doc["schema"] == SERIES_SCHEMA
    entry = doc["series"]["g"]
    assert entry["kind"] == "gauge"
    # The gauge's last-set time surfaces so dashboards can grey it.
    assert entry["updated_unix"] == pytest.approx(100.0)
    assert len(entry["points"]) == 2


def test_recorder_merge_snapshot_interleaves_foreign_points():
    clock = FakeClock()
    reg_a = MetricsRegistry()
    reg_a.gauge("x").set(1.0)
    rec_a = SeriesRecorder(reg_a, clock=clock)
    rec_a.sample()

    reg_b = MetricsRegistry()
    reg_b.gauge("x").set(9.0)
    clock_b = FakeClock(99.0)
    rec_b = SeriesRecorder(reg_b, clock=clock_b)
    rec_b.sample()

    merged = rec_a.merge_snapshot(rec_b.snapshot())
    assert merged == 1
    assert [t for t, _ in rec_a.series["x"].points()] == [99.0, 100.0]


def test_recorder_merge_rejects_foreign_schema():
    rec = SeriesRecorder(MetricsRegistry())
    with pytest.raises(ValueError):
        rec.merge_snapshot({"schema": "something/else", "series": {}})


def test_last_values_returns_newest_point_per_series():
    clock = FakeClock()
    reg = MetricsRegistry()
    g = reg.gauge("g")
    g.set(1.0)
    rec = SeriesRecorder(reg, clock=clock)
    rec.sample()
    g.set(7.0)
    clock.advance(1.0)
    rec.sample()
    assert rec.last_values() == {"g": 7.0}
