"""Distributed-trace identity, propagation primitives, and shard merging.

The tracer's cross-process story rests on three contracts pinned here:

* the **traceparent codec** is strict on parse and never raises — it is
  fed straight from the wire;
* span **parentage and depth are task-local** (a ContextVar stack), so
  concurrent asyncio tasks sharing one ambient tracer cannot corrupt
  each other's nesting;
* per-process **shards** (`repro.obs.trace/1`) merge into one
  Perfetto document with one process track per shard, clock-offset
  alignment, and orphan quarantine.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.obs.tracing import (
    NULL_TRACER,
    TRACE_SCHEMA,
    SpanHandle,
    Tracer,
    format_traceparent,
    new_trace_id,
    parse_traceparent,
)
from repro.obs.trace_merge import load_shard, merge_shards, write_merged

TID = "0af7651916cd43dd8448eb211c80319c"
SID = "b7ad6b7169203331"
GOOD = f"00-{TID}-{SID}-01"


# ----------------------------------------------------------------- codec

def test_format_parse_round_trip():
    assert parse_traceparent(format_traceparent(TID, SID)) == (TID, SID)


def test_new_trace_id_shape_and_uniqueness():
    a, b = new_trace_id(), new_trace_id()
    assert len(a) == 32 and set(a) <= set("0123456789abcdef")
    assert a != b


@pytest.mark.parametrize("bad", [
    None,
    17,
    b"00-" + TID.encode() + b"-" + SID.encode() + b"-01",
    "",
    "00",
    GOOD + "-extra",
    GOOD.replace("-", "_"),
    f"00-{TID.upper()}-{SID}-01",     # uppercase hex
    f"00-{TID[:-1]}-{SID}-01",        # short trace id
    f"00-{TID}-{SID}0-01",            # long span id
    f"00-{TID}-{SID}-1",              # short flags
    f"zz-{TID}-{SID}-01",             # non-hex version
    f"ff-{TID}-{SID}-01",             # forbidden version
    f"00-{'0' * 32}-{SID}-01",        # all-zero trace id
    f"00-{TID}-{'0' * 16}-01",        # all-zero span id
])
def test_parse_rejects_malformed(bad):
    assert parse_traceparent(bad) is None


@pytest.mark.parametrize("ok,expected", [
    (GOOD, (TID, SID)),
    (f"01-{TID}-{SID}-00", (TID, SID)),   # other versions/flags pass
])
def test_parse_accepts_valid(ok, expected):
    assert parse_traceparent(ok) == expected


# ------------------------------------------------------------- identity

def test_span_records_carry_identity():
    tracer = Tracer()
    with tracer.span("outer", a=1):
        tracer.instant("tick")
        with tracer.span("inner"):
            pass
    outer = next(r for r in tracer.records if r["name"] == "outer")
    inner = next(r for r in tracer.records if r["name"] == "inner")
    tick = next(r for r in tracer.records if r["name"] == "tick")
    assert outer["trace_id"] == tracer.trace_id
    assert outer["parent_span_id"] is None and outer["depth"] == 0
    assert inner["parent_span_id"] == outer["span_id"]
    assert inner["depth"] == 1
    assert tick["parent_span_id"] == outer["span_id"]
    assert len({outer["span_id"], inner["span_id"]}) == 2


def test_current_traceparent_tracks_innermost_span():
    tracer = Tracer()
    assert tracer.current_traceparent() is None
    with tracer.span("a") as a:
        assert tracer.current_traceparent() == \
            format_traceparent(tracer.trace_id, a.span_id)
        with tracer.span("b") as b:
            assert tracer.current_traceparent() == \
                format_traceparent(tracer.trace_id, b.span_id)
        assert tracer.current_traceparent() == \
            format_traceparent(tracer.trace_id, a.span_id)
    assert tracer.current_traceparent() is None


def test_remote_parent_joins_trace():
    tracer = Tracer(parent=GOOD)
    assert tracer.trace_id == TID
    with tracer.span("root"):
        tracer.instant("mark")
    root = tracer.records[-1]
    assert root["parent_span_id"] == SID
    mark = tracer.records[0]
    assert mark["parent_span_id"] == root["span_id"]


def test_invalid_remote_parent_starts_fresh_trace():
    tracer = Tracer(parent="garbage")
    assert parse_traceparent(
        format_traceparent(tracer.trace_id, "ab" * 8)) is not None
    with tracer.span("root"):
        pass
    assert tracer.records[0]["parent_span_id"] is None


def test_two_tracers_nest_independently_on_one_stack():
    # The stack is shared module state; spans of *other* tracers must
    # not contribute to this tracer's depth or parentage.
    t1, t2 = Tracer(), Tracer()
    with t1.span("one"):
        with t2.span("two"):
            pass
    two = t2.records[0]
    assert two["depth"] == 0
    assert two["parent_span_id"] is None
    assert two["trace_id"] == t2.trace_id


# --------------------------------------------- task-local depth (regression)

def test_concurrent_tasks_do_not_corrupt_depth():
    # Regression: with a plain instance attribute for depth, two tasks
    # interleaving spans on one ambient tracer would see each other's
    # increments — depths of 1/2 instead of 0/1 per task, and wrong
    # parentage. The ContextVar stack keeps each task's nesting private.
    tracer = Tracer()
    gate_a = asyncio.Event()
    gate_b = asyncio.Event()

    async def task_a():
        with tracer.span("a.outer"):
            gate_a.set()
            await gate_b.wait()
            with tracer.span("a.inner"):
                await asyncio.sleep(0)

    async def task_b():
        await gate_a.wait()
        with tracer.span("b.outer"):
            gate_b.set()
            with tracer.span("b.inner"):
                await asyncio.sleep(0)
            await asyncio.sleep(0)

    async def main():
        await asyncio.gather(task_a(), task_b())

    asyncio.run(main())
    spans = {r["name"]: r for r in tracer.records}
    assert spans["a.outer"]["depth"] == 0
    assert spans["b.outer"]["depth"] == 0
    assert spans["a.inner"]["depth"] == 1
    assert spans["b.inner"]["depth"] == 1
    assert spans["a.inner"]["parent_span_id"] == spans["a.outer"]["span_id"]
    assert spans["b.inner"]["parent_span_id"] == spans["b.outer"]["span_id"]
    # Cross-task contamination would make b.* children of a.outer.
    assert spans["b.outer"]["parent_span_id"] is None


def test_concurrent_tasks_see_their_own_traceparent():
    tracer = Tracer()
    seen = {}

    async def worker(name):
        with tracer.span(name) as span:
            await asyncio.sleep(0)
            seen[name] = (tracer.current_traceparent(), span.span_id)
            await asyncio.sleep(0)

    async def main():
        await asyncio.gather(worker("w1"), worker("w2"))

    asyncio.run(main())
    for name, (tp, span_id) in seen.items():
        assert tp == format_traceparent(tracer.trace_id, span_id), name


# ------------------------------------------------------------ detached spans

def test_detached_span_lifecycle():
    tracer = Tracer()
    handle = tracer.start_span("conn", conn=7)
    assert isinstance(handle, SpanHandle)
    assert tracer.current_traceparent() is None  # never on the stack
    handle.instant("loss", path=1)
    handle.finish(outcome="done")
    handle.finish(outcome="twice")  # idempotent: second call is a no-op
    kinds = [(r["type"], r["name"]) for r in tracer.records]
    assert kinds == [("instant", "loss"), ("span", "conn")]
    span = tracer.records[1]
    assert span["args"] == {"conn": 7, "outcome": "done"}
    assert tracer.records[0]["parent_span_id"] == span["span_id"]


def test_detached_span_parents_under_remote_traceparent():
    tracer = Tracer()
    handle = tracer.start_span("serve.connection", parent=GOOD)
    handle.finish()
    span = tracer.records[0]
    assert span["trace_id"] == TID          # joins the remote trace
    assert span["parent_span_id"] == SID
    assert handle.traceparent == format_traceparent(TID, span["span_id"])


def test_detached_span_nests_under_another_handle():
    tracer = Tracer()
    conn = tracer.start_span("serve.connection")
    sub = tracer.start_span("serve.subflow", parent=conn, path=0)
    sub.finish()
    conn.finish()
    sub_rec = tracer.records[0]
    assert sub_rec["parent_span_id"] == conn.span_id
    assert sub_rec["depth"] == 1


def test_detached_span_with_invalid_parent_is_root():
    tracer = Tracer()
    handle = tracer.start_span("conn", parent="not-a-traceparent")
    handle.finish()
    assert tracer.records[0]["parent_span_id"] is None
    assert tracer.records[0]["trace_id"] == tracer.trace_id


# ------------------------------------------------------------------ shards

def test_shard_dict_shape(tmp_path):
    tracer = Tracer()
    with tracer.span("work", n=3):
        tracer.instant("mark")
    shard = tracer.shard_dict("worker-x")
    assert shard["schema"] == TRACE_SCHEMA
    assert shard["trace_id"] == tracer.trace_id
    assert shard["process_name"] == "worker-x"
    assert shard["pid"] > 0
    assert shard["dropped"] == 0
    assert isinstance(shard["epoch_unix"], float)
    assert len(shard["events"]) == 2
    json.dumps(shard)  # JSON-serializable as exported

    path = tmp_path / "shard.json"
    assert tracer.export_shard(path, "worker-x") == 2
    assert load_shard(path)["process_name"] == "worker-x"


def test_load_shard_rejects_non_shards(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema": "other/1", "events": []}))
    with pytest.raises(ValueError):
        load_shard(path)
    path.write_text(json.dumps({"schema": TRACE_SCHEMA}))
    with pytest.raises(ValueError):
        load_shard(path)


def test_max_events_drops_and_counts():
    tracer = Tracer(max_events=2)
    for i in range(5):
        tracer.instant("e", i=i)
    assert len(tracer.records) == 2
    assert tracer.dropped == 3
    assert tracer.shard_dict()["dropped"] == 3


# -------------------------------------------------------------- null tracer

def test_null_tracer_full_api_is_noop():
    assert not NULL_TRACER.enabled
    with NULL_TRACER.span("x", a=1) as span:
        NULL_TRACER.instant("y")
    assert span is NULL_TRACER.span("z")  # one shared object
    handle = NULL_TRACER.start_span("conn", parent=GOOD)
    handle.instant("loss")
    handle.finish(outcome="done")
    assert handle.traceparent == ""
    assert handle.span_id == "" and handle.parent_span_id is None
    assert NULL_TRACER.current_traceparent() is None
    assert len(NULL_TRACER) == 0
    assert NULL_TRACER.records == ()


def test_null_tracer_does_not_touch_span_stack():
    tracer = Tracer()
    with tracer.span("real"):
        with NULL_TRACER.span("ghost"):
            with tracer.span("child"):
                pass
    child = next(r for r in tracer.records if r["name"] == "child")
    real = next(r for r in tracer.records if r["name"] == "real")
    assert child["parent_span_id"] == real["span_id"]
    assert child["depth"] == 1


# ------------------------------------------------------------------- merge

def _two_client_server_shards():
    client = Tracer()
    with client.span("fetch.transfer", n=1):
        tp = client.current_traceparent()
        server = Tracer()
        conn = server.start_span("serve.connection", parent=tp)
        sub = server.start_span("serve.subflow", parent=conn, path=0)
        sub.instant("serve.loss", path=0)
        sub.finish()
        conn.finish()
    return (client.shard_dict("client-proc"),
            server.shard_dict("server-proc"))


def test_merge_two_shards_two_process_tracks():
    doc, stats = merge_shards(_two_client_server_shards())
    assert stats.shards == 2
    assert stats.orphans == 0
    assert stats.processes == ["client-proc", "server-proc"]
    procs = {e["pid"]: e["args"]["name"] for e in doc["traceEvents"]
             if e.get("ph") == "M" and e["name"] == "process_name"}
    assert len(procs) >= 2  # same OS pid, still two Perfetto tracks
    assert set(procs.values()) >= {"client-proc", "server-proc"}
    json.dumps(doc)


def test_merge_preserves_cross_process_parentage():
    doc, _ = merge_shards(_two_client_server_shards())
    spans = {e["args"]["span_id"]: e for e in doc["traceEvents"]
             if e.get("ph") == "X"}
    fetch = next(e for e in spans.values() if e["name"] == "fetch.transfer")
    conn = next(e for e in spans.values() if e["name"] == "serve.connection")
    sub = next(e for e in spans.values() if e["name"] == "serve.subflow")
    assert conn["args"]["parent_span_id"] == fetch["args"]["span_id"]
    assert sub["args"]["parent_span_id"] == conn["args"]["span_id"]
    assert conn["pid"] != fetch["pid"]
    # The cross-shard link renders as a flow arrow pair.
    flows = [e for e in doc["traceEvents"] if e.get("ph") in ("s", "f")]
    assert len(flows) >= 2


def test_merge_quarantines_orphans():
    tracer = Tracer()
    with tracer.span("ok.root"):
        pass
    tracer._record({"type": "instant", "name": "lost.child", "ts": 0.001,
                    "depth": 1, "parent_span_id": "feedfacedeadbeef",
                    "trace_id": tracer.trace_id, "args": {}})
    doc, stats = merge_shards([tracer.shard_dict("proc")])
    assert stats.orphans == 1
    orphan_pid = 2  # one shard -> orphans land on pid N+1
    names = {e["args"]["name"] for e in doc["traceEvents"]
             if e.get("ph") == "M" and e["name"] == "process_name"}
    assert "(orphans)" in names
    orphan = next(e for e in doc["traceEvents"]
                  if e.get("name") == "lost.child")
    assert orphan["pid"] == orphan_pid
    assert orphan["args"]["orphan"] is True
    assert orphan["args"]["source_process"] == "proc"


def test_merge_drop_orphans_removes_them():
    tracer = Tracer()
    with tracer.span("ok.root"):
        pass
    tracer._record({"type": "instant", "name": "lost.child", "ts": 0.001,
                    "depth": 1, "parent_span_id": "feedfacedeadbeef",
                    "trace_id": tracer.trace_id, "args": {}})
    doc, stats = merge_shards([tracer.shard_dict("proc")],
                              drop_orphans=True)
    assert stats.orphans == 1  # still counted
    assert not any(e.get("name") == "lost.child"
                   for e in doc["traceEvents"])
    names = {e["args"]["name"] for e in doc["traceEvents"]
             if e.get("ph") == "M" and e["name"] == "process_name"}
    assert "(orphans)" not in names


def test_merge_aligns_clock_offsets():
    a, b = Tracer(), Tracer()
    a.instant("a.mark")
    b.instant("b.mark")
    sa, sb = a.shard_dict("a"), b.shard_dict("b")
    # Pretend shard b's process clock started 2 wall-clock seconds later.
    sb["epoch_unix"] = sa["epoch_unix"] + 2.0
    doc, _ = merge_shards([sa, sb])
    ts = {e["name"]: e["ts"] for e in doc["traceEvents"]
          if e.get("ph") == "i"}
    # b's event is shifted by the epoch delta onto a's axis.
    assert ts["b.mark"] - ts["a.mark"] == pytest.approx(2e6, abs=5e4)
    assert doc["otherData"]["ref_epoch_unix"] == sa["epoch_unix"]


def test_merge_roots_are_never_orphans():
    tracer = Tracer()
    with tracer.span("root.only"):
        pass
    _, stats = merge_shards([tracer.shard_dict("p")])
    assert stats.orphans == 0


def test_merge_empty_shard_list_raises():
    with pytest.raises(ValueError):
        merge_shards([])


def test_write_merged_round_trip(tmp_path):
    sa, sb = _two_client_server_shards()
    pa, pb = tmp_path / "a.json", tmp_path / "b.json"
    pa.write_text(json.dumps(sa))
    pb.write_text(json.dumps(sb))
    out = tmp_path / "merged.json"
    stats = write_merged([pa, pb], out)
    assert stats.events == len(sa["events"]) + len(sb["events"])
    doc = json.loads(out.read_text())
    assert doc["otherData"]["merged_shards"] == 2
    assert stats.as_dict()["processes"] == ["client-proc", "server-proc"]
