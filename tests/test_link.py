"""Link serialization / propagation / loss tests."""

import pytest

from repro.net.events import Simulator
from repro.net.link import Link
from repro.net.node import Host
from repro.net.packet import Packet
from repro.units import mbps, ms


class Recorder:
    def __init__(self):
        self.arrivals = []

    def receive(self, packet):
        self.arrivals.append(packet)


def one_link(seed=None, **kwargs):
    sim = Simulator(seed=seed)
    a, b = Host("a"), Host("b")
    link = Link(sim, a, b, kwargs.pop("rate_bps", mbps(100)),
                kwargs.pop("delay", ms(10)), **kwargs)
    return sim, link


def send(sim, link, sink, n=1, size=1500):
    for i in range(n):
        pkt = Packet(flow_id=1, seq=i, size_bytes=size, route=(link,), sink=sink)
        link.transmit(pkt)


def test_single_packet_latency_is_serialization_plus_propagation():
    sim, link = one_link()
    sink = Recorder()
    send(sim, link, sink)
    sim.run()
    # 1500 B at 100 Mbps = 120 us; propagation 10 ms.
    assert sim.now == pytest.approx(120e-6 + 0.010)
    assert len(sink.arrivals) == 1


def test_back_to_back_packets_pipeline():
    sim, link = one_link()
    sink = Recorder()
    send(sim, link, sink, n=3)
    sim.run()
    # Last packet leaves after 3 serializations, then propagates.
    assert sim.now == pytest.approx(3 * 120e-6 + 0.010)
    assert len(sink.arrivals) == 3


def test_queue_overflow_drops():
    sim, link = one_link()
    link.queue.limit = 2
    sink = Recorder()
    # One serializing + 2 queued; the rest dropped.
    send(sim, link, sink, n=10)
    sim.run()
    assert len(sink.arrivals) == 3
    assert link.queue.drops == 7


def test_bytes_and_packets_counted():
    sim, link = one_link()
    sink = Recorder()
    send(sim, link, sink, n=4)
    sim.run()
    assert link.packets_sent == 4
    assert link.bytes_sent == 4 * 1500


def test_utilization():
    sim, link = one_link()
    sink = Recorder()
    send(sim, link, sink, n=10)
    sim.run()
    elapsed = sim.now
    expected = 10 * 1500 * 8 / (mbps(100) * elapsed)
    assert link.utilization(elapsed) == pytest.approx(expected)


def test_utilization_zero_elapsed():
    _, link = one_link()
    assert link.utilization(0) == 0.0


def test_random_loss_drops_packets():
    sim, link = one_link(seed=1, loss_rate=0.5)
    link.queue.limit = 1000
    sink = Recorder()
    send(sim, link, sink, n=200)
    sim.run()
    assert 0 < len(sink.arrivals) < 200
    assert link.random_losses == 200 - len(sink.arrivals)


def test_zero_loss_rate_delivers_everything():
    sim, link = one_link(seed=1, loss_rate=0.0)
    sink = Recorder()
    send(sim, link, sink, n=50)
    sim.run()
    assert len(sink.arrivals) == 50


def test_invalid_rate_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Link(sim, Host("a"), Host("b"), 0, ms(1))


def test_invalid_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Link(sim, Host("a"), Host("b"), mbps(10), -0.001)


def test_invalid_loss_rate_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Link(sim, Host("a"), Host("b"), mbps(10), ms(1), loss_rate=1.0)


def test_multi_hop_forwarding():
    sim = Simulator()
    a, b, c = Host("a"), Host("b"), Host("c")
    l1 = Link(sim, a, b, mbps(100), ms(5))
    l2 = Link(sim, b, c, mbps(100), ms(5))
    sink = Recorder()
    pkt = Packet(flow_id=1, seq=0, size_bytes=1500, route=(l1, l2), sink=sink)
    l1.transmit(pkt)
    sim.run()
    assert len(sink.arrivals) == 1
    assert sim.now == pytest.approx(2 * 120e-6 + 2 * 0.005)
