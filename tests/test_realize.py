"""Cross-engine topology realization tests."""

import numpy as np
import pytest

from repro.fluidsim import FluidNetwork, FluidSimulation
from repro.net.queues import DropTailQueue
from repro.topology import BCube, Ec2Cloud, FatTree
from repro.topology.realize import realize
from repro.units import mbps, ms


class TestRealization:
    def test_node_and_link_counts(self):
        topo = FatTree(4, link_delay=ms(1))
        real = realize(topo)
        assert len(real.network.hosts) == 16
        assert len(real.network.switches) == 20
        # Every directed abstract link exists as a packet link.
        assert len(real.network.links) == len(topo.links)

    def test_route_translation_preserves_properties(self):
        topo = FatTree(4, link_delay=ms(1))
        real = realize(topo)
        path = topo.paths(topo.hosts[0], topo.hosts[-1], 1)[0]
        route = real.route_for(path)
        assert route.base_rtt() == pytest.approx(path.base_rtt(topo.links))
        assert route.min_rate() == path.min_capacity(topo.links)
        assert route.switch_hops() == path.switch_hops(topo.links)

    def test_transfer_runs_on_realized_bcube(self):
        topo = BCube(4, 1, link_delay=ms(1))
        real = realize(topo, seed=1,
                       queue_factory=lambda: DropTailQueue(limit_packets=100))
        routes = real.routes(topo.hosts[0], topo.hosts[-1], 2)
        conn = real.network.connection(routes, "lia", total_bytes=500_000)
        conn.start()
        real.network.run_until_complete([conn], timeout=60)
        assert conn.completed

    def test_relayed_bcube_route_is_contiguous(self):
        topo = BCube(4, 2, link_delay=ms(1))
        real = realize(topo, seed=1)
        # A pair differing in all digits: paths traverse relay hosts.
        paths = topo.paths(topo.hosts[0], topo.hosts[-1], 3)
        for p in paths:
            route = real.route_for(p)  # Route() validates contiguity
            assert route.hops() == len(p.link_indices)


class TestCrossEngineEc2:
    """The two engines on the *same realized topology* must agree on the
    headline Fig. 10 effect: 4-subflow MPTCP ~ 4x single-path goodput."""

    def test_multipath_speedup_matches(self):
        topo = Ec2Cloud(n_hosts=4)

        # Packet engine.
        real = realize(topo, seed=1,
                       queue_factory=lambda: DropTailQueue(limit_packets=100))
        routes1 = real.routes("vm0", "vm1", 1)
        routes4 = real.routes("vm2", "vm3", 4)
        tcp = real.network.connection(routes1, "reno", total_bytes=None)
        mptcp = real.network.connection(routes4, "lia", total_bytes=None)
        tcp.start(), mptcp.start()
        real.network.run(until=10.0)
        packet_speedup = (
            mptcp.aggregate_goodput_bps(elapsed=10.0)
            / tcp.aggregate_goodput_bps(elapsed=10.0)
        )

        # Fluid engine.
        fnet = FluidNetwork(Ec2Cloud(n_hosts=4), path_seed=1)
        fnet.add_connection("vm0", "vm1", "reno", n_subflows=1)
        fnet.add_connection("vm2", "vm3", "lia", n_subflows=4)
        fnet.finalize()
        res = FluidSimulation(fnet, dt=0.001, seed=1).run(10.0)
        fluid_speedup = res.connection_goodput_bps[1] / res.connection_goodput_bps[0]

        assert packet_speedup == pytest.approx(4.0, rel=0.25)
        assert fluid_speedup == pytest.approx(4.0, rel=0.25)
        assert packet_speedup == pytest.approx(fluid_speedup, rel=0.3)
