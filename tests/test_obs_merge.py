"""Cross-process metrics merging: the campaign worker roll-up rule.

Counters **sum**, gauges **last-write-win**, histogram counts **add** —
the semantics `MetricsRegistry.merge_snapshot` applies when worker
``"obs"`` payloads fold into a parent registry.
"""

import pytest

from repro.obs import MetricsRegistry


def _worker_snapshot(packets, cwnd, latencies):
    reg = MetricsRegistry()
    reg.counter("net.packets").inc(packets)
    reg.gauge("cwnd").set(cwnd)
    h = reg.histogram("lat", buckets=(1.0, 2.0, 4.0))
    for v in latencies:
        h.observe(v)
    return reg.snapshot()


def test_counters_sum_across_processes():
    parent = MetricsRegistry()
    parent.counter("net.packets").inc(5)
    parent.merge_snapshot(_worker_snapshot(10, 1.0, []),
                          kinds={"cwnd": "gauge"})
    parent.merge_snapshot(_worker_snapshot(7, 2.0, []),
                          kinds={"cwnd": "gauge"})
    assert parent.counter("net.packets").value == 22


def test_gauges_last_write_wins():
    parent = MetricsRegistry()
    parent.gauge("cwnd").set(3.0)
    parent.merge_snapshot(_worker_snapshot(0, 11.0, []),
                          kinds={"cwnd": "gauge"})
    assert parent.gauge("cwnd").value == 11.0


def test_histogram_counts_add_elementwise():
    parent = MetricsRegistry()
    parent.merge_snapshot(_worker_snapshot(0, 0.0, [0.5, 1.5]))
    parent.merge_snapshot(_worker_snapshot(0, 0.0, [3.0, 9.0]))
    h = parent.get("lat")
    assert h.count == 4
    assert h.counts == [1, 1, 1, 1]
    assert h.total == pytest.approx(14.0)
    assert h.minimum == 0.5
    assert h.maximum == 9.0


def test_histogram_layout_mismatch_raises():
    parent = MetricsRegistry()
    parent.histogram("lat", buckets=(10.0, 20.0)).observe(5.0)
    with pytest.raises(ValueError):
        parent.merge_snapshot(_worker_snapshot(0, 0.0, [1.0]))


def test_existing_instrument_kind_beats_inference():
    # A plain number would default to counter, but the parent already
    # holds a gauge under that name — the instrument's kind wins.
    parent = MetricsRegistry()
    parent.gauge("cwnd").set(1.0)
    parent.merge_snapshot({"cwnd": 9.0})
    assert parent.gauge("cwnd").value == 9.0
    parent.merge_snapshot({"cwnd": 2.0})
    assert parent.gauge("cwnd").value == 2.0  # LWW, not 11.0


def test_unknown_plain_numbers_default_to_counters():
    parent = MetricsRegistry()
    parent.merge_snapshot({"runs": 3})
    parent.merge_snapshot({"runs": 4})
    assert parent.counter("runs").value == 7


def test_merge_matches_single_process_result():
    # Two workers' halves must equal one process observing everything.
    half_a = _worker_snapshot(10, 5.0, [0.5, 1.5, 3.0])
    half_b = _worker_snapshot(20, 8.0, [1.7, 9.0])
    merged = MetricsRegistry()
    merged.merge_snapshot(half_a, kinds={"cwnd": "gauge"})
    merged.merge_snapshot(half_b, kinds={"cwnd": "gauge"})

    whole = _worker_snapshot(30, 8.0, [0.5, 1.5, 3.0, 1.7, 9.0])
    got = merged.snapshot()
    assert got["net.packets"] == whole["net.packets"]
    assert got["cwnd"] == whole["cwnd"]
    assert got["lat"]["counts"] == whole["lat"]["counts"]
    assert got["lat"]["sum"] == pytest.approx(whole["lat"]["sum"])


def test_gauge_updated_unix_survives_jsonl(tmp_path):
    import json

    reg = MetricsRegistry()
    reg.gauge("g").set(1.0)
    reg.counter("c").inc()
    path = tmp_path / "metrics.jsonl"
    reg.write_jsonl(path)
    records = {r["name"]: r for r in
               (json.loads(line) for line in path.read_text().splitlines())}
    assert records["g"]["updated_unix"] > 0
    assert "updated_unix" not in records["c"]
