"""Smoke tests: every figure experiment runs at tiny scale and returns a
sound structure with the paper's qualitative direction where cheap to check.

The full qualitative assertions (orderings, savings) live in benchmarks/;
these tests keep the harness importable and runnable in CI time.
"""

import pytest

from repro.experiments import (
    fig01_power_vs_subflows,
    fig02_mobile_power,
    fig03_energy_vs_throughput,
    fig04_power_vs_delay,
    fig06_shared_bottleneck,
    fig07_traffic_shifting,
    fig08_trace,
    fig09_dts_testbed,
    fig10_ec2,
    fig12_14_subflows,
    fig15_phi,
    fig16_dc_throughput,
    fig17_wireless,
)
from repro.units import mb


def test_fig01_mptcp_beats_tcp_power_and_rises():
    res = fig01_power_vs_subflows.run(subflow_counts=[1, 4],
                                      transfer_bytes=mb(2))
    tcp = res.tcp.mean_power_w
    powers = [m.mean_power_w for m in res.mptcp_by_subflows]
    assert all(p > tcp for p in powers)
    assert powers[-1] > powers[0]


def test_fig02_mptcp_draws_most_power():
    res = fig02_mobile_power.run(transfer_bytes=mb(1))
    by = res.by_label()
    assert by["mptcp"].device_power_w > by["tcp-wifi"].device_power_w
    assert by["mptcp"].device_power_w > by["tcp-lte"].device_power_w


def test_fig03_energy_falls_power_rises_wired():
    res = fig03_energy_vs_throughput.run(
        wired_bandwidths_mbps=[200, 600], wireless_bandwidths_mbps=[10, 40],
        wired_bytes=mb(8), wireless_bytes=mb(2),
    )
    assert res.wired[0].measurement.energy_j > res.wired[-1].measurement.energy_j
    assert res.wired[0].measurement.mean_power_w < res.wired[-1].measurement.mean_power_w
    assert (res.wireless[0].measurement.mean_power_w
            < res.wireless[-1].measurement.mean_power_w)


def test_fig04_power_rises_with_delay():
    res = fig04_power_vs_delay.run(path_delays_ms=[20, 120])
    low, high = res.points
    assert high.measurement.mean_power_w > low.measurement.mean_power_w
    # Throughput matched within tolerance (the controlled variable).
    assert high.measurement.goodput_bps == pytest.approx(
        low.measurement.goodput_bps, rel=0.25
    )


def test_fig06_structure_and_positive_energy():
    res = fig06_shared_bottleneck.run(
        algorithms=["lia", "olia"], user_counts=[3], transfer_bytes=mb(1)
    )
    assert len(res.cells) == 2
    cell = res.cell("lia", 3)
    assert len(cell.energies_j) == 3
    assert cell.stats.mean > 0


def test_fig07_rows_complete():
    res = fig07_traffic_shifting.run(
        algorithms=["lia", "olia"], transfer_bytes=mb(6), seeds=[1]
    )
    assert set(res.by_algorithm()) == {"lia", "olia"}
    assert all(r.goodput_bps > 0 for r in res.rows)


def test_fig08_traces_aligned():
    res = fig08_trace.run(duration=8.0, bin_width=2.0)
    lia = res.traces["lia"]
    assert len(lia.times) >= 3
    assert lia.total_energy_j > 0
    assert "dts" in res.traces


def test_fig09_pairing():
    res = fig09_dts_testbed.run(transfer_bytes=mb(6), seeds=[2])
    assert len(res.runs) == 1
    assert res.runs[0].energy_lia_j > 0
    assert res.runs[0].energy_dts_j > 0


def test_fig10_multipath_saves_energy():
    res = fig10_ec2.run(n_hosts=8, duration=6.0)
    by = res.by_label()
    assert by["lia"].aggregate_goodput_bps > 1.5 * by["tcp"].aggregate_goodput_bps
    assert res.saving_vs("tcp", "dts") > 0.2


def test_fig12_bcube_subflows_save_energy():
    res = fig12_14_subflows.run_sweep(
        lambda: __import__("repro.topology", fromlist=["BCube"]).BCube(4, 2,
            link_delay=0.001),
        topology_name="bcube", subflow_counts=[1, 3], duration=10.0, seeds=[1],
    )
    series = res.energy_series()
    assert series[3] < series[1]


def test_fig14_vl2_subflows_do_not_save():
    res = fig12_14_subflows.run_fig14(subflow_counts=[1, 8], duration=10.0,
                                      seeds=[1])
    series = res.energy_series()
    assert series[8] >= series[1] * 0.95


def test_fig15_16_structure():
    res = fig15_phi.run(topologies=["vl2"], algorithms=["lia", "dts"],
                        n_subflows=4, duration=8.0, seeds=[1])
    assert res.energy("vl2", "lia") > 0
    fig16 = fig16_dc_throughput.from_fig15(res)
    ratio = fig16.throughput_ratio("vl2")
    assert 0.7 < ratio < 1.3


def test_fig17_dts_saves_energy():
    res = fig17_wireless.run(algorithms=["lia", "dts"], duration=30.0,
                             seeds=[1])
    assert res.energy_saving() > 0.0
    assert res.throughput_ratio() < 1.1


def test_default_topologies_match_paper_scale():
    ft = fig12_14_subflows.default_topology("fattree")
    vl2 = fig12_14_subflows.default_topology("vl2")
    assert len(ft.hosts) == 128 and len(ft.switches) == 80
    assert len(vl2.hosts) == 128 and len(vl2.switches) == 80
    with pytest.raises(ValueError):
        fig12_14_subflows.default_topology("hypercube")
