"""MPTCP connection-layer tests."""

import pytest

from repro.errors import ConfigurationError
from repro.net.mptcp import MptcpConnection
from repro.net.network import Network
from repro.net.queues import DropTailQueue
from repro.units import mbps, mib, mb, ms


def two_path_net(*, rate=mbps(100), delay1=ms(10), delay2=ms(10), seed=1,
                 queue=100):
    net = Network(seed=seed)
    a, b = net.add_host("a"), net.add_host("b")
    routes = []
    for i, d in enumerate((delay1, delay2)):
        s = net.add_switch(f"s{i}")
        net.link(a, s, rate_bps=rate, delay=d / 2,
                 queue_factory=lambda: DropTailQueue(limit_packets=queue))
        net.link(s, b, rate_bps=rate, delay=d / 2,
                 queue_factory=lambda: DropTailQueue(limit_packets=queue))
        routes.append(net.route([a, s, b]))
    return net, routes


def test_needs_at_least_one_route():
    net = Network()
    from repro.algorithms import create_controller

    with pytest.raises(ConfigurationError):
        MptcpConnection(net.sim, [], create_controller("lia"))


def test_aggregates_two_paths():
    net, routes = two_path_net()
    conn = net.connection(routes, "lia", total_bytes=mb(16))
    conn.start()
    net.run_until_complete([conn], timeout=60)
    assert conn.completed
    # Two disjoint 100 Mbps paths: aggregate beats a single path.
    assert conn.aggregate_goodput_bps() > mbps(105)


def test_subflow_count():
    net, routes = two_path_net()
    conn = net.connection(routes, "olia", total_bytes=mib(1))
    assert conn.n_subflows == 2


def test_single_route_behaves_like_tcp():
    net, routes = two_path_net()
    conn = net.connection([routes[0]], "reno", total_bytes=mib(2))
    conn.start()
    net.run_until_complete([conn], timeout=60)
    assert conn.completed
    assert conn.aggregate_goodput_bps() <= mbps(100) * 1.01


def test_controller_sees_all_subflows():
    net, routes = two_path_net()
    conn = net.connection(routes, "balia", total_bytes=mib(1))
    assert conn.controller.n_subflows == 2
    assert conn.controller.subflows[0] is conn.subflows[0]


def test_subflows_share_supply():
    net, routes = two_path_net()
    conn = net.connection(routes, "lia", total_bytes=mib(4))
    conn.start()
    net.run_until_complete([conn], timeout=60)
    acked = sum(sf.acked for sf in conn.subflows)
    assert acked == conn.supply.total
    assert all(sf.acked > 0 for sf in conn.subflows)


def test_completion_time_recorded():
    net, routes = two_path_net()
    conn = net.connection(routes, "lia", total_bytes=mib(1))
    conn.start()
    net.run_until_complete([conn], timeout=60)
    assert conn.completion_time is not None
    assert 0 < conn.completion_time <= net.sim.now


def test_mean_rtt_between_path_rtts():
    net, routes = two_path_net(delay1=ms(10), delay2=ms(50))
    conn = net.connection(routes, "lia", total_bytes=mib(4))
    conn.start()
    net.run_until_complete([conn], timeout=60)
    mean = conn.mean_rtt()
    assert 0.005 < mean < 0.2


def test_acked_bytes():
    net, routes = two_path_net()
    conn = net.connection(routes, "lia", total_bytes=mib(1))
    conn.start()
    net.run_until_complete([conn], timeout=60)
    assert conn.acked_bytes >= mib(1)


def test_subflow_goodputs_sum_to_aggregate():
    net, routes = two_path_net()
    conn = net.connection(routes, "lia", total_bytes=mib(4))
    conn.start()
    net.run_until_complete([conn], timeout=60)
    per_path = conn.subflow_goodputs_bps()
    # Each subflow goodput uses its own start; sums are approximate.
    assert sum(per_path) == pytest.approx(conn.aggregate_goodput_bps(), rel=0.1)


def test_asymmetric_delays_shift_traffic_to_fast_path():
    net, routes = two_path_net(delay1=ms(5), delay2=ms(80))
    conn = net.connection(routes, "lia", total_bytes=mb(12))
    conn.start()
    net.run_until_complete([conn], timeout=60)
    fast, slow = conn.subflows
    assert fast.acked > slow.acked


def test_total_counters_sum_subflows():
    net, routes = two_path_net(queue=15, seed=9)
    conn = net.connection(routes, "lia", total_bytes=mb(8))
    conn.start()
    net.run_until_complete([conn], timeout=60)
    assert conn.total_loss_events() == sum(s.loss_events for s in conn.subflows)
    assert conn.total_retransmissions() == sum(s.retransmitted for s in conn.subflows)
