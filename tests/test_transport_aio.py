"""Live UDP transport tests: loopback transfers, loss, and the metrics API.

Everything runs over real sockets on 127.0.0.1 inside a private event
loop per test (``asyncio.run``) — no external processes, no fixed port
numbers (servers bind ephemeral ports), bounded by explicit timeouts so
a wedged transfer fails fast instead of hanging CI.
"""

from __future__ import annotations

import asyncio
import json
import urllib.request

import pytest

from repro.transport.aio import LossyTransport, MetricsHttpServer, open_endpoint
from repro.transport.client import fetch, loopback_selftest
from repro.transport.server import TransportServer
from repro.transport.wire import encode_bye

TRANSFER_BYTES = 512 * 1024  # keep CI wall time low; CLI selftest does 4 MiB


def _selftest(controller, **kw):
    kw.setdefault("total_bytes", TRANSFER_BYTES)
    kw.setdefault("loss_rate", 0.02)
    kw.setdefault("loss_seed", 42)
    kw.setdefault("timeout", 60.0)
    return asyncio.run(loopback_selftest(controller=controller, **kw))


# --------------------------------------------------------- loopback transfers

@pytest.mark.parametrize("controller", ["dts", "lia"])
def test_loopback_transfer_under_loss(controller):
    result = _selftest(controller, subflows=2)
    f = result.fetch
    assert f.bytes_received >= TRANSFER_BYTES
    assert f.n_subflows == 2
    assert f.goodput_bps > 0
    # Both subflows actually carried traffic.
    assert all(s.packets_received > 0 for s in f.subflows)
    # 2% injected forward loss must have forced real recovery work.
    (conn,) = result.server_metrics["connections"].values()
    assert conn["controller"] == controller
    assert conn["completed"]
    total_retx = sum(s["retransmitted"] for s in conn["subflows"])
    assert total_retx > 0, "loss shim injected no loss?"
    assert conn["energy_j"] > 0
    assert conn["aggregate_goodput_bps"] > 0


def test_loopback_transfer_clean_three_subflows():
    result = _selftest("olia", subflows=3, loss_rate=0.0)
    f = result.fetch
    assert f.bytes_received >= TRANSFER_BYTES
    assert len(f.subflows) == 3
    (conn,) = result.server_metrics["connections"].values()
    assert conn["n_subflows"] == 3
    assert sum(s["acked_segments"] for s in conn["subflows"]) \
        == conn["acked_segments"]


def test_server_manifest_captured():
    result = _selftest("dts", subflows=2)
    manifest = result.server_manifest
    assert manifest["schema"] == "repro.obs.manifest/1"
    assert manifest["label"] == "transport-serve"


# ------------------------------------------------------- metrics endpoint

def test_metrics_endpoint_serves_subflow_state():
    async def scenario():
        server = TransportServer(host="127.0.0.1", base_port=0, n_ports=2,
                                 loss_rate=0.01, loss_seed=7, metrics_port=0)
        ports = await server.start()
        try:
            await fetch("127.0.0.1", ports, controller="dts",
                        total_bytes=TRANSFER_BYTES, timeout=60.0)
            await asyncio.sleep(0.05)
            base = f"http://127.0.0.1:{server.metrics_port}"

            def get(path):
                with urllib.request.urlopen(base + path, timeout=5) as resp:
                    return resp.status, json.loads(resp.read())

            status, body = await asyncio.to_thread(get, "/metrics")
            assert status == 200
            (conn,) = body["connections"].values()
            for sf in conn["subflows"]:
                # The acceptance-criteria trio: cwnd / throughput / energy
                # (energy is connection-level; per-path state rides along).
                assert sf["cwnd"] > 0
                assert "throughput_bps" in sf
                assert sf["rto_s"] >= 0.2
            assert conn["energy_j"] > 0

            status, health = await asyncio.to_thread(get, "/healthz")
            assert status == 200 and health["status"] == "ok"

            try:
                await asyncio.to_thread(get, "/nope")
            except urllib.error.HTTPError as e:
                assert e.code == 404
                assert "/metrics" in json.loads(e.read())["routes"]
            else:  # pragma: no cover
                pytest.fail("unknown route did not 404")
        finally:
            await server.stop()

    import urllib.error
    asyncio.run(scenario())


def test_metrics_http_rejects_post():
    async def scenario():
        server = MetricsHttpServer({"/metrics": lambda: {"x": 1}})
        port = await server.start()
        try:
            def post():
                req = urllib.request.Request(
                    f"http://127.0.0.1:{port}/metrics", data=b"{}",
                    method="POST")
                urllib.request.urlopen(req, timeout=5)
            with pytest.raises(urllib.error.HTTPError) as exc:
                await asyncio.to_thread(post)
            assert exc.value.code == 405
        finally:
            await server.stop()

    import urllib.error
    asyncio.run(scenario())


# ------------------------------------------------ garbage on the wire

def test_garbage_datagrams_are_counted_not_fatal():
    async def scenario():
        server = TransportServer(host="127.0.0.1", base_port=0, n_ports=2)
        ports = await server.start()
        try:
            seen = []
            transport, endpoint = await open_endpoint(
                lambda seg, addr: seen.append(seg),
                remote_addr=("127.0.0.1", ports[0]))
            # Pure noise, a truncated header, and a valid-magic/bad-type
            # datagram: the server must drop all three silently.
            transport.sendto(b"\x00" * 40)
            transport.sendto(b"\xa7")
            transport.sendto(b"\xa7\x01\x7f\x00\x00\x01\x00\x00")
            # Valid BYE for a connection that does not exist: ignored.
            transport.sendto(encode_bye(9999, 0))
            await asyncio.sleep(0.1)
            assert server.metrics_snapshot()["server"]["bad_datagrams"] == 3
            assert not seen  # server stayed silent — and alive:
            result = await fetch("127.0.0.1", ports, controller="lia",
                                 total_bytes=64 * 1024, timeout=30.0)
            assert result.bytes_received >= 64 * 1024
            transport.close()
        finally:
            await server.stop()

    asyncio.run(scenario())


# ----------------------------------------------------------- lossy transport

def test_lossy_transport_is_seeded_and_bounded():
    class FakeTransport:
        def __init__(self):
            self.sent = []

        def sendto(self, data, addr=None):
            self.sent.append(data)

    def run(seed):
        fake = FakeTransport()
        lossy = LossyTransport(fake, 0.3, seed)
        for i in range(500):
            lossy.sendto(bytes([i % 256]))
        return fake.sent, lossy.dropped, lossy.passed

    sent_a, dropped_a, passed_a = run(7)
    sent_b, dropped_b, passed_b = run(7)
    assert sent_a == sent_b and dropped_a == dropped_b  # deterministic
    assert dropped_a + passed_a == 500
    assert 0 < dropped_a < 500  # actually dropping, not all or nothing

    with pytest.raises(Exception):
        LossyTransport(FakeTransport(), 1.0, 1)  # loss_rate must be < 1


def test_reused_conn_id_supersedes_finished_transfer():
    # Fetch clients in fresh processes may reuse connection ids; a HELLO
    # for an id whose transfer already finished must start a new
    # transfer, not replay the dead one's HELLO_ACK forever.
    async def scenario():
        server = TransportServer(host="127.0.0.1", base_port=0, n_ports=2)
        ports = await server.start()
        try:
            first = await fetch("127.0.0.1", ports, controller="dts",
                                conn_id=1, total_bytes=64 * 1024,
                                timeout=30.0)
            await asyncio.sleep(0.05)
            second = await fetch("127.0.0.1", ports, controller="lia",
                                 conn_id=1, total_bytes=64 * 1024,
                                 timeout=30.0)
            assert first.bytes_received >= 64 * 1024
            assert second.bytes_received >= 64 * 1024
            (conn,) = server.metrics_snapshot()["connections"].values()
            assert conn["controller"] == "lia"  # superseded in place
        finally:
            await server.stop()

    asyncio.run(scenario())


def test_hello_retry_survives_initial_loss():
    # 60% ACK-path loss: the HELLO handshake must retry until it lands.
    async def scenario():
        server = TransportServer(host="127.0.0.1", base_port=0, n_ports=2)
        ports = await server.start()
        try:
            result = await fetch("127.0.0.1", ports, controller="dts",
                                 total_bytes=64 * 1024, loss_rate=0.6,
                                 loss_seed=3, timeout=60.0)
            assert result.bytes_received >= 64 * 1024
        finally:
            await server.stop()

    asyncio.run(scenario())
