"""Sharded fluid stepping: determinism, merge arithmetic, campaign wiring.

Sharding is exact — replicas share no links or subflows — so the merged
result must be byte-identical whether the shards run serially in one
process or fan out over a pool, and the merge itself is plain weighted
arithmetic these tests can check by hand.  The campaign-executor and
CLI integration (``--shards``, ``--engine fluid-equilibrium``) rides
the same determinism contract.
"""

import dataclasses
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.campaign.executor import execute_run
from repro.campaign.spec import RunSpec, build_topology
from repro.errors import ConfigurationError
from repro.fluidsim.sharding import (
    ShardSpec,
    make_shard_specs,
    merge_shard_payloads,
    run_sharded,
    simulate_shard,
)

#: Small/fast sharded-run shape shared by the tests below.
FAST = dict(algorithm="lia", n_subflows=2, duration=0.2, dt=0.01, seed=3)


def _strip_wall(result) -> dict:
    """ShardedResult as a dict minus the wall-clock field (the only
    legitimately nondeterministic one)."""
    d = dataclasses.asdict(result)
    d.pop("shard_wall_s")
    return d


# ----------------------------------------------------------------- specs


def test_shard_seeds_are_distinct_and_deterministic():
    specs = make_shard_specs("bcube", n_shards=4, **FAST)
    seeds = [s.shard_seed for s in specs]
    assert len(set(seeds)) == 4
    assert seeds == [s.shard_seed for s in make_shard_specs("bcube",
                                                            n_shards=4,
                                                            **FAST)]
    # Neighbouring base seeds never collide with other shard indices.
    other = make_shard_specs("bcube", n_shards=4,
                             **{**FAST, "seed": FAST["seed"] + 1})
    assert not set(seeds) & {s.shard_seed for s in other}


def test_make_shard_specs_validates_count():
    with pytest.raises(ConfigurationError, match="n_shards"):
        make_shard_specs("bcube", n_shards=0, **FAST)


def test_shard_spec_is_frozen_and_orderable():
    spec = ShardSpec(topology="bcube", shard_index=0, n_shards=2, **FAST)
    with pytest.raises(dataclasses.FrozenInstanceError):
        spec.seed = 9
    assert spec.shard_seed == FAST["seed"] * 100_003


# ----------------------------------------------------------------- merging


def test_merge_arithmetic_by_hand():
    def payload(i, subflows, links, rtt, util):
        return {
            "shard_index": i, "n_subflows": subflows, "n_connections": 8,
            "n_links": links, "aggregate_goodput_bps": 1e9,
            "delivered_bits": 8e9, "host_energy_j": 10.0,
            "switch_energy_j": 5.0, "loss_events": 3, "mean_rtt_s": rtt,
            "mean_utilization": util, "steps_taken": 20, "wall_s": 0.1,
        }

    merged = merge_shard_payloads([payload(0, 10, 4, 0.010, 0.5),
                                   payload(1, 30, 12, 0.030, 0.9)])
    assert merged.n_shards == 2
    assert merged.n_subflows == 40
    assert merged.n_connections == 16
    assert merged.aggregate_goodput_bps == pytest.approx(2e9)
    assert merged.delivered_bits == pytest.approx(16e9)
    assert merged.host_energy_j == pytest.approx(20.0)
    assert merged.switch_energy_j == pytest.approx(10.0)
    assert merged.total_energy_j == pytest.approx(30.0)
    assert merged.loss_events == 6
    assert merged.steps_taken == 40
    # Subflow-weighted RTT: (10*0.010 + 30*0.030) / 40.
    assert merged.mean_rtt_s == pytest.approx(0.025)
    # Link-weighted utilization: (4*0.5 + 12*0.9) / 16.
    assert merged.mean_utilization == pytest.approx(0.8)
    # 30 J over 2 delivered decimal GB.
    assert merged.energy_per_gb() == pytest.approx(15.0)


def test_merge_rejects_empty():
    with pytest.raises(ConfigurationError, match="zero shard"):
        merge_shard_payloads([])


def test_energy_per_gb_with_nothing_delivered_is_inf():
    base = {"shard_index": 0, "n_subflows": 1, "n_connections": 1,
            "n_links": 1, "aggregate_goodput_bps": 0.0,
            "delivered_bits": 0.0, "host_energy_j": 1.0,
            "switch_energy_j": 1.0, "loss_events": 0, "mean_rtt_s": 0.01,
            "mean_utilization": 0.0, "steps_taken": 1, "wall_s": 0.1}
    assert merge_shard_payloads([base]).energy_per_gb() == float("inf")


# ------------------------------------------------------------- determinism


def test_serial_and_pooled_sharded_runs_are_identical():
    serial = run_sharded("bcube", n_shards=2, jobs=1, **FAST)
    pooled = run_sharded("bcube", n_shards=2, jobs=2, **FAST)
    assert _strip_wall(serial) == _strip_wall(pooled)
    assert serial.n_shards == 2
    assert serial.aggregate_goodput_bps > 0
    # Two replicas of the same fabric: exactly twice one shard's subflows.
    one = simulate_shard(make_shard_specs("bcube", n_shards=2, **FAST)[0])
    assert serial.n_subflows == 2 * one["n_subflows"]


def test_run_sharded_accepts_caller_pool():
    with ProcessPoolExecutor(max_workers=2) as pool:
        pooled = run_sharded("bcube", n_shards=2, pool=pool, **FAST)
    serial = run_sharded("bcube", n_shards=2, jobs=1, **FAST)
    assert _strip_wall(serial) == _strip_wall(pooled)


def test_shards_are_isolated_from_ambient_obs_session():
    """Each shard's counters come from a private registry: an ambient
    obs session in the calling process (the bench runner's, say) must
    not bleed cumulative counts into later shards' payloads."""
    import repro.obs as obs

    with obs.session(label="test.sharding"):
        result = run_sharded("bcube", n_shards=2, jobs=1, **FAST)
    expected_steps = 2 * round(FAST["duration"] / FAST["dt"])
    assert result.steps_taken == expected_steps


def test_shard_replicas_differ_from_each_other():
    """Different shard indices carry genuinely different workloads (the
    derived seed reaches path selection, pairing, and the engine RNG)."""
    s0, s1 = make_shard_specs("bcube", n_shards=2, **FAST)
    p0, p1 = simulate_shard(s0), simulate_shard(s1)
    assert p0["aggregate_goodput_bps"] != p1["aggregate_goodput_bps"]


# --------------------------------------------------------- campaign wiring


def test_executor_sharded_fluid_run():
    spec = RunSpec(topology="bcube", n_subflows=2, seed=3, duration=0.2,
                   dt=0.01, params={"shards": 2, "dtype": "float64"})
    payload = execute_run(spec)
    m = payload["metrics"]
    assert m["n_shards"] == 2
    assert m["aggregate_goodput_bps"] > 0
    assert len(payload["obs"]["shard_wall_s"]) == 2
    # shard_jobs is scheduling, not physics: same metrics at any value.
    assert execute_run(spec, shard_jobs=2)["metrics"] == m
    # And it never reaches the content hash (cacheable across machines).
    assert payload["spec_hash"] == spec.content_hash()


def test_executor_sharded_run_rejects_unknown_params():
    spec = RunSpec(topology="bcube", n_subflows=1, seed=1, duration=0.1,
                   dt=0.01, params={"shards": 2, "bogus": 1})
    with pytest.raises(ConfigurationError, match="bogus"):
        execute_run(spec)


def test_executor_equilibrium_run_metrics_parity():
    """The fluid-equilibrium engine emits the same metrics keys as a
    time-stepped fluid run (plus solver diagnostics), so the sweep
    aggregation layer consumes either interchangeably."""
    fluid = RunSpec(topology="bcube", algorithm="lia", n_subflows=2,
                    seed=1, duration=6.0, dt=0.01)
    eq = fluid.replace(engine="fluid-equilibrium")
    m_fluid = execute_run(fluid)["metrics"]
    m_eq = execute_run(eq)["metrics"]
    assert set(m_fluid) | {"solver"} == set(m_eq)
    assert m_eq["solver"]["fallback"] is False
    assert m_eq["solver"]["converged"] is True
    assert m_eq["solver"]["iterations"] > 10
    assert m_eq["steps_taken"] == 0
    assert m_eq["aggregate_goodput_bps"] == pytest.approx(
        m_fluid["aggregate_goodput_bps"], rel=0.25)
    assert m_eq["energy_per_gb"] > 0
    assert fluid.content_hash() != eq.content_hash()


def test_executor_equilibrium_falls_back_for_unsupported_algorithm():
    spec = RunSpec(topology="bcube", algorithm="wvegas", n_subflows=2,
                   seed=1, duration=0.2, dt=0.01,
                   engine="fluid-equilibrium")
    m = execute_run(spec)["metrics"]
    assert m["solver"]["fallback"] is True
    assert "no loss-balance equilibrium" in m["solver"]["reason"]
    assert m["steps_taken"] == 20  # integrated instead
    assert m["aggregate_goodput_bps"] > 0


def test_city_scale_topologies_build_and_validate():
    t24 = build_topology("fattree24")
    assert len(list(t24.hosts)) == 3456
    # Spec layer accepts the city-scale names on both fluid engines...
    RunSpec(topology="fattree24", engine="fluid")
    RunSpec(topology="fattree32", engine="fluid-equilibrium")
    # ...but not on the packet engines.
    with pytest.raises(ConfigurationError, match="cannot run topology"):
        RunSpec(topology="fattree24", engine="packet-batch")


def test_cli_sweep_equilibrium_and_sharded(tmp_path, capsys):
    from repro.cli import main

    rc = main(["sweep", "--topologies", "bcube", "--subflows", "1",
               "--seeds", "1", "--duration", "0.4", "--dt", "0.01",
               "--engine", "fluid-equilibrium",
               "--cache-dir", str(tmp_path)])
    assert rc == 0
    assert "topology: bcube" in capsys.readouterr().out

    rc = main(["sweep", "--topologies", "bcube", "--subflows", "1",
               "--seeds", "1", "--duration", "0.2", "--dt", "0.01",
               "--shards", "2", "--jobs", "2",
               "--cache-dir", str(tmp_path)])
    assert rc == 0
    assert "topology: bcube" in capsys.readouterr().out

    rc = main(["sweep", "--topologies", "bcube", "--subflows", "1",
               "--seeds", "1", "--engine", "fluid-equilibrium",
               "--shards", "2", "--cache-dir", str(tmp_path)])
    assert rc == 2
    assert "time-stepped fluid engine only" in capsys.readouterr().err
