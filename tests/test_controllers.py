"""Unit tests for every congestion controller's window rules.

These drive controllers directly with fake subflows so each per-ACK
increase and loss decrease can be checked against its closed form (the
Section IV decompositions translated to per-ACK rules).
"""

import math

import pytest

from repro.algorithms import (
    BaliaController,
    CoupledController,
    DctcpController,
    DtsController,
    EcmtcpController,
    EwtcpController,
    ExtendedDtsController,
    LiaController,
    OliaController,
    RenoController,
    WvegasController,
    algorithm_names,
    create_controller,
)
from repro.algorithms.base import MIN_CWND
from repro.errors import AlgorithmError


class FakeRoute:
    def __init__(self, switch_hops=0):
        self._hops = switch_hops

    def switch_hops(self):
        return self._hops


class FakeSubflow:
    def __init__(self, cwnd, rtt, base_rtt=None, switch_hops=0):
        self.cwnd = float(cwnd)
        self.rtt = float(rtt)
        self.latest_rtt = float(rtt)
        self.base_rtt = float(base_rtt if base_rtt is not None else rtt)
        self.loss_events = 0
        self.route = FakeRoute(switch_hops)


def attach(controller, *subflows):
    controller.attach(list(subflows))
    return controller


class TestRegistry:
    def test_names_sorted_and_complete(self):
        names = algorithm_names()
        assert names == sorted(names)
        for expected in ("lia", "olia", "balia", "ecmtcp", "wvegas",
                         "dts", "dts-ext", "reno", "dctcp", "ewtcp", "coupled"):
            assert expected in names

    def test_aliases(self):
        assert create_controller("TCP").name == "reno"
        assert create_controller("mptcp").name == "lia"
        assert create_controller("edts").name == "dts-ext"

    def test_unknown_rejected(self):
        with pytest.raises(AlgorithmError):
            create_controller("cubic")

    def test_kwargs_forwarded(self):
        ctrl = create_controller("dts-ext", kappa=0.5)
        assert ctrl.kappa == 0.5

    def test_attach_requires_subflows(self):
        with pytest.raises(AlgorithmError):
            create_controller("lia").attach([])


class TestReno:
    def test_increase_is_one_over_w(self):
        sf = FakeSubflow(cwnd=10, rtt=0.05)
        ctrl = attach(RenoController(), sf)
        ctrl.on_ack(sf)
        assert sf.cwnd == pytest.approx(10 + 0.1)

    def test_loss_halves(self):
        sf = FakeSubflow(cwnd=10, rtt=0.05)
        ctrl = attach(RenoController(), sf)
        ctrl.on_loss(sf)
        assert sf.cwnd == pytest.approx(5.0)

    def test_loss_floor(self):
        sf = FakeSubflow(cwnd=1.2, rtt=0.05)
        ctrl = attach(RenoController(), sf)
        ctrl.on_loss(sf)
        assert sf.cwnd == MIN_CWND


class TestEwtcp:
    def test_weight_is_inverse_sqrt_n(self):
        sfs = [FakeSubflow(10, 0.05) for _ in range(4)]
        ctrl = attach(EwtcpController(), *sfs)
        ctrl.on_ack(sfs[0])
        assert sfs[0].cwnd == pytest.approx(10 + (1 / math.sqrt(4)) / 10)

    def test_single_path_equals_reno(self):
        sf = FakeSubflow(10, 0.05)
        ctrl = attach(EwtcpController(), sf)
        ctrl.on_ack(sf)
        assert sf.cwnd == pytest.approx(10.1)


class TestCoupled:
    def test_increase_uses_total_window(self):
        a, b = FakeSubflow(10, 0.05), FakeSubflow(30, 0.05)
        ctrl = attach(CoupledController(), a, b)
        ctrl.on_ack(a)
        assert a.cwnd == pytest.approx(10 + 10 / 40**2)

    def test_loss_takes_half_total_from_loser(self):
        a, b = FakeSubflow(30, 0.05), FakeSubflow(10, 0.05)
        ctrl = attach(CoupledController(), a, b)
        ctrl.on_loss(a)
        assert a.cwnd == pytest.approx(30 - 40 / 2)

    def test_loss_floor(self):
        a, b = FakeSubflow(5, 0.05), FakeSubflow(100, 0.05)
        ctrl = attach(CoupledController(), a, b)
        ctrl.on_loss(a)
        assert a.cwnd == MIN_CWND


class TestLia:
    def test_symmetric_increase_matches_closed_form(self):
        a, b = FakeSubflow(10, 0.05), FakeSubflow(10, 0.05)
        ctrl = attach(LiaController(), a, b)
        # best = w/rtt^2 = 4000; total rate = 400; increase = 4000/400^2.
        expected = min(4000 / 400**2, 1 / 10)
        ctrl.on_ack(a)
        assert a.cwnd == pytest.approx(10 + expected)

    def test_capped_by_reno_increase(self):
        # A tiny-window subflow next to a big one: cap 1/w must bind.
        small, big = FakeSubflow(2, 0.05), FakeSubflow(500, 0.01)
        ctrl = attach(LiaController(), small, big)
        uncapped = ctrl.alpha_increase(small)
        ctrl.on_ack(small)
        assert small.cwnd == pytest.approx(2 + min(uncapped, 0.5))

    def test_loss_halves_subflow_only(self):
        a, b = FakeSubflow(20, 0.05), FakeSubflow(10, 0.05)
        ctrl = attach(LiaController(), a, b)
        ctrl.on_loss(a)
        assert a.cwnd == pytest.approx(10)
        assert b.cwnd == pytest.approx(10)


class TestOlia:
    def test_single_path_reduces_to_coupled_term(self):
        sf = FakeSubflow(10, 0.05)
        ctrl = attach(OliaController(), sf)
        ctrl.on_ack(sf)
        expected = (10 / 0.05**2) / (10 / 0.05) ** 2  # = 1/10
        assert sf.cwnd == pytest.approx(10 + expected)

    def test_alpha_zero_for_single_path(self):
        sf = FakeSubflow(10, 0.05)
        ctrl = attach(OliaController(), sf)
        assert ctrl.alpha(sf) == 0.0

    def test_alpha_sums_to_zero_across_paths(self):
        a, b = FakeSubflow(30, 0.05), FakeSubflow(10, 0.05)
        ctrl = attach(OliaController(), a, b)
        # Make b the best path (longer loss interval).
        for _ in range(50):
            ctrl._loss_intervals[id(b)].on_ack()
        ctrl._loss_intervals[id(a)].on_loss()
        alphas = [ctrl.alpha(a), ctrl.alpha(b)]
        assert sum(alphas) == pytest.approx(0.0, abs=1e-12)
        assert alphas[1] > 0 > alphas[0]

    def test_no_transfer_when_best_path_has_max_window(self):
        a, b = FakeSubflow(30, 0.05), FakeSubflow(10, 0.05)
        ctrl = attach(OliaController(), a, b)
        for _ in range(50):
            ctrl._loss_intervals[id(a)].on_ack()
        ctrl._loss_intervals[id(b)].on_loss()
        # Best (a) already holds the max window: collected set empty.
        assert ctrl.alpha(a) == 0.0
        assert ctrl.alpha(b) == 0.0

    def test_loss_resets_interval(self):
        a, b = FakeSubflow(10, 0.05), FakeSubflow(10, 0.05)
        ctrl = attach(OliaController(), a, b)
        for _ in range(10):
            ctrl._loss_intervals[id(a)].on_ack()
        ctrl.on_loss(a)
        assert a.cwnd == pytest.approx(5)
        assert ctrl._loss_intervals[id(a)].current == 0


class TestBalia:
    def test_single_path_increase_is_reno(self):
        sf = FakeSubflow(10, 0.05)
        ctrl = attach(BaliaController(), sf)
        ctrl.on_ack(sf)
        # alpha = 1 -> psi = 1 -> increase = w/(rtt^2 total^2) = 1/w.
        assert sf.cwnd == pytest.approx(10.1)

    def test_psi_expansion(self):
        a, b = FakeSubflow(10, 0.05), FakeSubflow(20, 0.05)
        ctrl = attach(BaliaController(), a, b)
        alpha = (20 / 0.05) / (10 / 0.05)
        assert ctrl.psi(a) == pytest.approx(0.4 + alpha / 2 + alpha**2 / 10)

    def test_loss_decrease_capped_at_three_quarters(self):
        a, b = FakeSubflow(1000, 0.05), FakeSubflow(10, 0.05)
        ctrl = attach(BaliaController(), b, a)
        ctrl.on_loss(b)  # alpha large -> min(alpha, 1.5) = 1.5 -> keep 1/4
        assert b.cwnd == pytest.approx(10 * 0.25)

    def test_loss_on_best_path_is_half(self):
        a, b = FakeSubflow(40, 0.05), FakeSubflow(10, 0.05)
        ctrl = attach(BaliaController(), a, b)
        ctrl.on_loss(a)  # alpha = 1 on the max-rate path
        assert a.cwnd == pytest.approx(20)


class TestEcmtcp:
    def test_increase_closed_form(self):
        a, b = FakeSubflow(10, 0.04), FakeSubflow(10, 0.08)
        ctrl = attach(EcmtcpController(), a, b)
        expected = 0.08 / (2 * 0.04 * 20)
        ctrl.on_ack(b)
        assert b.cwnd == pytest.approx(10 + expected)

    def test_symmetric_equals_lia_scale(self):
        a, b = FakeSubflow(10, 0.05), FakeSubflow(10, 0.05)
        ctrl = attach(EcmtcpController(), a, b)
        ctrl.on_ack(a)
        # rtt/(2 * rtt * 20) = 1/40 = psi=1 coupled increase at symmetry.
        assert a.cwnd == pytest.approx(10 + 1 / 40)

    def test_loss_halves(self):
        a, b = FakeSubflow(10, 0.05), FakeSubflow(10, 0.05)
        ctrl = attach(EcmtcpController(), a, b)
        ctrl.on_loss(a)
        assert a.cwnd == pytest.approx(5)


class TestWvegas:
    def test_no_adjustment_until_full_round(self):
        sf = FakeSubflow(5, 0.05, base_rtt=0.05)
        ctrl = attach(WvegasController(), sf)
        for _ in range(4):
            ctrl.on_ack(sf)
        assert sf.cwnd == pytest.approx(5)

    def test_grows_when_below_target(self):
        sf = FakeSubflow(5, 0.05, base_rtt=0.05)  # zero queueing: diff = 0
        ctrl = attach(WvegasController(), sf)
        for _ in range(5):
            ctrl.on_ack(sf)
        assert sf.cwnd == pytest.approx(6)

    def test_shrinks_when_backlog_exceeds_target(self):
        # Heavy queueing: diff = w * q/rtt = 20 * 0.6 = 12 > alpha = 10.
        sf = FakeSubflow(20, 0.1, base_rtt=0.04)
        ctrl = attach(WvegasController(), sf)
        for _ in range(20):
            ctrl.on_ack(sf)
        assert sf.cwnd == pytest.approx(19)

    def test_targets_track_rate_share(self):
        fast = FakeSubflow(30, 0.05, base_rtt=0.05)
        slow = FakeSubflow(10, 0.1, base_rtt=0.1)
        ctrl = attach(WvegasController(total_alpha=12.0), fast, slow)
        ctrl._update_targets()
        # fast rate 600, slow 100: targets split 12 proportionally.
        assert ctrl.alpha(fast) == pytest.approx(12 * 600 / 700)
        assert ctrl.alpha(slow) == pytest.approx(max(1.0, 12 * 100 / 700))

    def test_loss_halves_and_resets_round(self):
        sf = FakeSubflow(8, 0.05)
        ctrl = attach(WvegasController(), sf)
        ctrl.on_ack(sf)
        ctrl.on_loss(sf)
        assert sf.cwnd == pytest.approx(4)
        assert ctrl._acks_in_round[id(sf)] == 0


class TestDctcp:
    def test_increase_without_marks_is_reno(self):
        sf = FakeSubflow(10, 0.05)
        ctrl = attach(DctcpController(), sf)
        ctrl.on_ack(sf)
        assert sf.cwnd == pytest.approx(10.1)

    def test_ecn_cuts_once_per_window(self):
        sf = FakeSubflow(100, 0.05)
        ctrl = attach(DctcpController(), sf)
        ctrl.on_ecn(sf)
        after_first = sf.cwnd
        ctrl.on_ecn(sf)
        assert after_first < 100
        assert sf.cwnd == after_first  # second mark in same window: no cut

    def test_alpha_converges_toward_mark_fraction(self):
        sf = FakeSubflow(4, 0.05)
        ctrl = attach(DctcpController(), sf)
        for _ in range(4000):
            ctrl.on_ack(sf)
            ctrl.on_ecn(sf)
            sf.cwnd = 4.0  # pin the window so the estimator dominates
        assert ctrl.alpha(sf) > 0.5

    def test_loss_halves(self):
        sf = FakeSubflow(10, 0.05)
        ctrl = attach(DctcpController(), sf)
        ctrl.on_loss(sf)
        assert sf.cwnd == pytest.approx(5)

    def test_is_ecn_capable(self):
        assert DctcpController.ecn_capable
        assert not LiaController.ecn_capable


class TestDts:
    def test_psi_is_c_times_epsilon(self):
        sf = FakeSubflow(10, 0.05, base_rtt=0.05)
        ctrl = attach(DtsController(c=1.0), sf)
        eps = ctrl.epsilon(sf)
        assert ctrl.psi(sf) == pytest.approx(eps)
        assert eps == pytest.approx(2 / (1 + math.exp(-5)), rel=1e-6)

    def test_increase_scales_with_epsilon(self):
        clean = FakeSubflow(10, 0.05, base_rtt=0.05)
        ctrl = attach(DtsController(), clean)
        ctrl.on_ack(clean)
        gain_clean = clean.cwnd - 10

        congested = FakeSubflow(10, 0.25, base_rtt=0.05)  # ratio 0.2
        ctrl2 = attach(DtsController(), congested)
        ctrl2.on_ack(congested)
        gain_congested = congested.cwnd - 10
        # The coupled base term also shrinks with rtt, but epsilon should
        # make the congested path's *relative* gain far smaller still.
        base_clean = (10 / 0.05**2) / (10 / 0.05) ** 2
        base_congested = (10 / 0.25**2) / (10 / 0.25) ** 2
        assert gain_clean / base_clean > 10 * (gain_congested / base_congested)

    def test_loss_halves(self):
        sf = FakeSubflow(10, 0.05)
        ctrl = attach(DtsController(), sf)
        ctrl.on_loss(sf)
        assert sf.cwnd == pytest.approx(5)

    def test_c_scales_increase(self):
        sf1 = FakeSubflow(10, 0.05, base_rtt=0.05)
        attach(DtsController(c=1.0), sf1).on_ack(sf1)
        sf2 = FakeSubflow(10, 0.05, base_rtt=0.05)
        attach(DtsController(c=2.0), sf2).on_ack(sf2)
        assert (sf2.cwnd - 10) == pytest.approx(2 * (sf1.cwnd - 10))


class TestExtendedDts:
    def test_price_counts_hops_and_congestion(self):
        sf = FakeSubflow(10, 0.05, base_rtt=0.05, switch_hops=3)
        ctrl = attach(ExtendedDtsController(rho=1.0, gamma=2.0,
                                            delay_cost_weight=0.0), sf)
        assert ctrl.price(sf) == pytest.approx(3.0)  # no queueing

    def test_price_adds_congestion_indicator(self):
        sf = FakeSubflow(10, 0.10, base_rtt=0.05, switch_hops=1)
        ctrl = attach(ExtendedDtsController(rho=1.0, gamma=2.0,
                                            delay_cost_weight=0.0), sf)
        assert ctrl.price(sf) == pytest.approx(3.0)  # 1 hop + gamma

    def test_delay_cost_term(self):
        sf = FakeSubflow(10, 0.2, base_rtt=0.2, switch_hops=0)
        ctrl = attach(ExtendedDtsController(gamma=0.0, delay_cost_weight=1.0,
                                            delay_cost_reference=0.05), sf)
        assert ctrl.price(sf) == pytest.approx(0.2 / 0.05 - 1)

    def test_drain_reduces_window_vs_plain_dts(self):
        plain = FakeSubflow(50, 0.05, base_rtt=0.05, switch_hops=4)
        attach(DtsController(), plain).on_ack(plain)
        taxed = FakeSubflow(50, 0.05, base_rtt=0.05, switch_hops=4)
        attach(ExtendedDtsController(kappa=1e-3), taxed).on_ack(taxed)
        assert taxed.cwnd < plain.cwnd

    def test_drain_bounded_by_floor(self):
        sf = FakeSubflow(1.0, 0.05, base_rtt=0.05, switch_hops=10)
        ctrl = attach(ExtendedDtsController(kappa=10.0), sf)
        ctrl.on_ack(sf)
        assert sf.cwnd >= MIN_CWND
