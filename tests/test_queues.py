"""Queue-discipline tests: DropTail (with ECN) and RED."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.net.packet import Packet
from repro.net.queues import DropTailQueue, EcnConfig, REDQueue


def make_packet(seq=0, ecn=False):
    return Packet(flow_id=1, seq=seq, size_bytes=1500, route=(), sink=None,
                  ecn_capable=ecn)


class TestDropTail:
    def test_fifo_order(self):
        q = DropTailQueue(limit_packets=10)
        for i in range(3):
            q.push(make_packet(seq=i))
        assert [q.pop().seq for _ in range(3)] == [0, 1, 2]

    def test_pop_empty_returns_none(self):
        assert DropTailQueue().pop() is None

    def test_drop_when_full(self):
        q = DropTailQueue(limit_packets=2)
        assert q.push(make_packet())
        assert q.push(make_packet())
        assert not q.push(make_packet())
        assert q.drops == 1
        assert len(q) == 2

    def test_occupancy_tracks_contents(self):
        q = DropTailQueue(limit_packets=5)
        q.push(make_packet())
        q.push(make_packet())
        q.pop()
        assert q.occupancy() == 1

    def test_enqueued_counter(self):
        q = DropTailQueue(limit_packets=5)
        for i in range(4):
            q.push(make_packet(seq=i))
        assert q.enqueued == 4

    def test_invalid_limit_rejected(self):
        with pytest.raises(ConfigurationError):
            DropTailQueue(limit_packets=0)

    def test_ecn_marks_above_threshold(self):
        q = DropTailQueue(limit_packets=10, ecn=EcnConfig(threshold=2))
        pkts = [make_packet(seq=i, ecn=True) for i in range(4)]
        for p in pkts:
            q.push(p)
        assert [p.ecn_ce for p in pkts] == [False, False, True, True]
        assert q.marks == 2

    def test_ecn_ignores_non_capable_packets(self):
        q = DropTailQueue(limit_packets=10, ecn=EcnConfig(threshold=1))
        first = make_packet(ecn=False)
        q.push(first)
        second = make_packet(ecn=False)
        q.push(second)
        assert not second.ecn_ce
        assert q.marks == 0

    def test_ecn_threshold_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            EcnConfig(threshold=0)


class TestRed:
    def rng(self):
        return np.random.default_rng(0)

    def test_requires_rng(self):
        with pytest.raises(ConfigurationError):
            REDQueue(rng=None)

    def test_invalid_thresholds(self):
        with pytest.raises(ConfigurationError):
            REDQueue(limit_packets=10, min_th=8, max_th=5, rng=self.rng())

    def test_no_early_drop_when_empty(self):
        q = REDQueue(limit_packets=100, min_th=5, max_th=15, rng=self.rng())
        assert all(q.push(make_packet(seq=i)) for i in range(5))
        assert q.drops == 0

    def test_hard_drop_at_limit(self):
        q = REDQueue(limit_packets=3, min_th=1, max_th=3, max_p=0.0,
                     rng=self.rng())
        for i in range(3):
            q.push(make_packet(seq=i))
        assert not q.push(make_packet(seq=99))
        assert q.drops == 1

    def test_average_tracks_occupancy(self):
        q = REDQueue(limit_packets=100, min_th=50, max_th=90, weight=0.5,
                     rng=self.rng())
        for i in range(20):
            q.push(make_packet(seq=i))
        assert q.average_occupancy > 0

    def test_early_drops_between_thresholds(self):
        q = REDQueue(limit_packets=1000, min_th=1, max_th=5, max_p=1.0,
                     weight=1.0, rng=self.rng())
        results = [q.push(make_packet(seq=i)) for i in range(200)]
        assert q.drops > 0
        assert not all(results)

    def test_ecn_marks_instead_of_dropping(self):
        q = REDQueue(limit_packets=1000, min_th=1, max_th=5, max_p=1.0,
                     weight=1.0, ecn=True, rng=self.rng())
        pkts = [make_packet(seq=i, ecn=True) for i in range(200)]
        for p in pkts:
            q.push(p)
        assert q.marks > 0
        assert q.drops == 0

    def test_fifo_order(self):
        q = REDQueue(limit_packets=100, min_th=50, max_th=90, rng=self.rng())
        for i in range(3):
            q.push(make_packet(seq=i))
        assert [q.pop().seq for _ in range(3)] == [0, 1, 2]

    def test_pop_empty_returns_none(self):
        q = REDQueue(limit_packets=10, min_th=2, max_th=8, rng=self.rng())
        assert q.pop() is None
