"""Equivalence tests for the packet-engine fast path.

The PR-4 optimisations (packet pooling, RTO timer coalescing, heap
compaction, batched RNG) are *behaviour-preserving*: every one of them
must be invisible to the simulation. These tests pin that down —
property tests compare the optimised paths against their reference
implementations under random schedules, cancellations, and network
conditions, and a leak check proves the pool's lifecycle bookkeeping.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.net.events import Simulator
from repro.net.network import Network
from repro.net.queues import DropTailQueue
from repro.net.rand import BatchedRandom
from repro.units import mbps, ms

# --------------------------------------------------------- event-order props


def _run_program(sim: Simulator, program) -> list:
    """Execute a random schedule/cancel program; returns the dispatch trace.

    ``program`` is a list of (delay, n_children, cancel_index) triples:
    one initial event per triple, whose callback schedules ``n_children``
    follow-up events (handle-less posts and cancellable schedules
    alternating) and cancels the pending handle at ``cancel_index``.
    Everything is deterministic, so any two simulators given the same
    program must produce byte-identical traces.
    """
    trace = []
    handles = []

    def fire(tag, n_children, cancel_index):
        trace.append((round(sim.now, 9), tag))
        for k in range(n_children):
            child_tag = (tag, k)
            delay = 0.25 * (k + 1)
            if k % 2:
                sim.post(delay, fire, child_tag, 0, -1)
            else:
                handles.append(
                    sim.schedule(delay, fire, child_tag, 0, -1))
        if handles and cancel_index >= 0:
            handles[cancel_index % len(handles)].cancel()

    for i, (delay, n_children, cancel_index) in enumerate(program):
        handles.append(sim.schedule(delay, fire, i, n_children, cancel_index))
    sim.run()
    return trace


program_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=4.0,
                  allow_nan=False, allow_infinity=False),
        st.integers(0, 3),
        st.integers(-1, 50),
    ),
    min_size=1, max_size=40,
)


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(program=program_strategy)
def test_compaction_preserves_execution_order(program):
    """Aggressive heap compaction dispatches the exact event sequence the
    never-compacting simulator does, including (time, tie-break) order."""
    baseline = _run_program(
        Simulator(seed=1, compact_fraction=None), program)
    compacted_sim = Simulator(seed=1, compact_min_stubs=1,
                              compact_fraction=0.0)
    compacted = _run_program(compacted_sim, program)
    assert compacted == baseline


def test_compaction_actually_triggers_and_preserves_order():
    """A cancel-heavy workload crosses the compaction threshold (so the
    property above is not vacuous) and still dispatches in order."""
    sim = Simulator(seed=1, compact_min_stubs=8, compact_fraction=0.25)
    fired = []
    # Enough live events to reach the probe cadence (checks fire once per
    # 1024 dispatches) with cancelled stubs still dominating the heap.
    handles = [sim.schedule(1.0 + i * 1e-6, fired.append, i)
               for i in range(50_000)]
    for i, h in enumerate(handles):
        if i % 10:  # cancel 90%: stubs dominate the heap
            h.cancel()
    sim.schedule(2.0, fired.append, "last")
    sim.run()
    assert sim.heap_compactions > 0
    assert fired == [i for i in range(50_000) if i % 10 == 0] + ["last"]


def test_cancelled_stub_accounting_survives_compaction():
    sim = Simulator(seed=1, compact_min_stubs=4, compact_fraction=0.1)
    handles = [sim.schedule(1.0, lambda: None) for _ in range(64)]
    for h in handles:
        h.cancel()
        h.cancel()  # idempotent: must not double-count
    sim.run()
    assert sim._cancelled_pending == 0
    assert sim.pending() == 0


# --------------------------------------------------------- batched RNG props

rng_ops = st.lists(
    st.sampled_from(["random", "expo_a", "expo_b", "pareto", "uniform"]),
    min_size=1, max_size=300)


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), ops=rng_ops)
def test_batched_random_is_stream_identical(seed, ops):
    """Any interleaving of facade draws yields the same values *and* the
    same final generator state as direct scalar draws."""
    direct = np.random.default_rng(seed)
    batched_rng = np.random.default_rng(seed)
    facade = BatchedRandom(batched_rng)
    for op in ops:
        if op == "random":
            want, got = direct.random(), facade.random()
        elif op == "expo_a":
            want, got = direct.exponential(2.0), facade.exponential(2.0)
        elif op == "expo_b":
            want, got = direct.exponential(0.5), facade.exponential(0.5)
        elif op == "pareto":
            want, got = direct.pareto(1.5), facade.pareto(1.5)
        else:
            want, got = direct.uniform(1.0, 3.0), facade.uniform(1.0, 3.0)
        assert got == want
    facade.sync()
    assert (batched_rng.bit_generator.state
            == direct.bit_generator.state)


# ----------------------------------------------------- pipe closed-form prop

@settings(max_examples=200, deadline=None)
@given(data=st.data())
def test_compute_pipe_matches_reference(data):
    """The closed-form pipe computation equals the per-sequence oracle for
    every scoreboard state the sender can actually reach."""
    net = Network(seed=1)
    a, b = net.add_host("a"), net.add_host("b")
    net.link(a, b, rate_bps=mbps(100), delay=ms(5))
    conn = net.tcp_connection(net.route([a, b]), total_bytes=10_000)
    sender = conn.subflows[0]

    acked = data.draw(st.integers(0, 60), label="acked")
    recover = acked + data.draw(st.integers(0, 60), label="recover_gap")
    high = recover + data.draw(st.integers(0, 30), label="frontier_gap")
    # SACKed seqs are strictly above the cumulative ACK point; outstanding
    # retransmissions live in [acked, recover) and are disjoint from them.
    sackable = list(range(acked + 1, high))
    sacked = set(data.draw(st.lists(st.sampled_from(sackable), unique=True))
                 if sackable else [])
    retxable = [s for s in range(acked, recover) if s not in sacked]
    retx = set(data.draw(st.lists(st.sampled_from(retxable), unique=True))
               if retxable else [])
    sender.acked = acked
    sender.recover_point = recover
    sender.high_water = high
    sender._sacked = sacked
    sender._retx_outstanding = retx
    # _max_sacked never decreases, so it may exceed max(sacked) after the
    # cumulative ACK point advanced past old SACK blocks.
    floor = max(sacked) if sacked else -1
    sender._max_sacked = floor + data.draw(st.integers(0, 5), label="stale")
    sender._rto_recovery = data.draw(st.booleans(), label="rto")

    assert sender._compute_pipe() == sender._compute_pipe_reference()


# ------------------------------------------------- end-to-end knob equivalence

def _transfer_outcome(seed, loss, queue, *, fastpath: bool):
    """Run one lossy transfer; returns every behavioural observable."""
    if fastpath:
        net = Network(seed=seed)
        conn_kwargs = {}
    else:
        net = Network(seed=seed, pooling=False, compact_fraction=None)
        conn_kwargs = {"rto_coalesce": False}
    a, b = net.add_host("a"), net.add_host("b")
    s = net.add_switch("s")
    net.link(a, s, rate_bps=mbps(50), delay=ms(2),
             queue_factory=lambda: DropTailQueue(limit_packets=100))
    net.link(s, b, rate_bps=mbps(20), delay=ms(8),
             queue_factory=lambda: DropTailQueue(limit_packets=queue),
             loss_rate=loss)
    conn = net.tcp_connection(net.route([a, s, b]), total_bytes=400_000,
                              delayed_acks=bool(seed % 2), **conn_kwargs)
    conn.start()
    net.run_until_complete([conn], timeout=600)
    sf = conn.subflows[0]
    return {
        "completed": conn.completed,
        "completion_time": conn.supply.completion_time,
        "acked": sf.acked,
        "packets_sent": sf.packets_sent,
        "retransmitted": sf.retransmitted,
        "fast_retransmits": sf.fast_retransmits,
        "timeouts": sf.timeouts,
        "loss_events": sf.loss_events,
        "acks": sf.receiver.acks_sent,
        "final_now": net.sim.now,
    }


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 10_000),
    loss=st.floats(min_value=0.0, max_value=0.03),
    queue=st.integers(6, 60),
)
def test_fastpath_knobs_are_behaviour_preserving(seed, loss, queue):
    """Pooling + compaction + RTO coalescing produce *identical* dynamics
    (times, counters, loss episodes) to the un-optimised paths under any
    random loss/queue mix — the figure-level equivalence guarantee."""
    fast = _transfer_outcome(seed, loss, queue, fastpath=True)
    slow = _transfer_outcome(seed, loss, queue, fastpath=False)
    assert fast == slow


def test_pool_debug_detects_no_leaks_end_to_end():
    """Under debug bookkeeping, a full lossy transfer (drops, random
    losses, retransmissions) returns every pooled packet it issued."""
    net = Network(seed=3, pool_debug=True)
    a, b = net.add_host("a"), net.add_host("b")
    s = net.add_switch("s")
    net.link(a, s, rate_bps=mbps(50), delay=ms(2),
             queue_factory=lambda: DropTailQueue(limit_packets=30))
    net.link(s, b, rate_bps=mbps(20), delay=ms(5),
             queue_factory=lambda: DropTailQueue(limit_packets=10),
             loss_rate=0.01)
    conn = net.tcp_connection(net.route([a, s, b]), total_bytes=400_000)
    conn.start()
    net.run_until_complete([conn], timeout=600)
    assert conn.completed
    net.sim.run()  # drain in-flight packets and stale timer ticks
    assert net.sim.pool.reuses > 0
    net.sim.pool.assert_drained()


def test_pool_double_release_raises_in_debug_mode():
    from repro.errors import SimulationError
    from repro.net.packet import PacketPool

    pool = PacketPool(debug=True)
    pkt = pool.data(1, 0, (), None, 0.0)
    pool.release(pkt)
    with pytest.raises(SimulationError, match="double release"):
        pool.release(pkt)


def test_pool_leak_raises_in_debug_mode():
    from repro.errors import SimulationError
    from repro.net.packet import PacketPool

    pool = PacketPool(debug=True)
    pool.data(1, 0, (), None, 0.0)
    with pytest.raises(SimulationError, match="leak"):
        pool.assert_drained()


def test_externally_built_packets_are_never_recycled():
    from repro.net.packet import Packet, PacketPool

    pool = PacketPool()
    pkt = Packet.data(1, 0, (), None, 0.0)
    pool.release(pkt)
    assert len(pool) == 0
