"""Analysis-helper tests: box stats, time series, reports, comparisons."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analysis import (
    bin_series,
    box_stats,
    crossover_points,
    format_series,
    format_table,
    moving_average,
    relative_saving,
    summarize,
)
from repro.analysis.report import format_grouped
from repro.errors import ConfigurationError


class TestBoxStats:
    def test_five_number_summary(self):
        stats = box_stats(range(1, 101))
        assert stats.minimum == 1
        assert stats.maximum == 100
        assert stats.median == pytest.approx(50.5)
        assert stats.q1 == pytest.approx(np.percentile(range(1, 101), 25))
        assert stats.q3 == pytest.approx(np.percentile(range(1, 101), 75))

    def test_outliers_detected(self):
        data = [10.0] * 20 + [10.5] * 20 + [100.0]
        stats = box_stats(data)
        assert stats.outliers == [100.0]
        assert stats.whisker_high <= 10.5

    def test_no_outliers_whiskers_are_extremes(self):
        stats = box_stats([1, 2, 3, 4, 5])
        assert stats.whisker_low == 1
        assert stats.whisker_high == 5

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            box_stats([])

    def test_iqr(self):
        stats = box_stats(range(1, 101))
        assert stats.iqr == pytest.approx(stats.q3 - stats.q1)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1,
                    max_size=200))
    def test_property_invariants(self, data):
        stats = box_stats(data)
        assert stats.minimum <= stats.q1 <= stats.median <= stats.q3 <= stats.maximum
        assert stats.whisker_low >= stats.minimum
        assert stats.whisker_high <= stats.maximum
        assert stats.n == len(data)

    def test_summarize(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["n"] == 3

    def test_summarize_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize([])


class TestTimeSeries:
    def test_bin_series_means(self):
        times = [0.1, 0.2, 1.1, 1.2]
        values = [1.0, 3.0, 10.0, 20.0]
        centres, means = bin_series(times, values, 1.0)
        assert means == pytest.approx([2.0, 15.0])

    def test_bin_series_empty(self):
        assert bin_series([], [], 1.0) == ([], [])

    def test_bin_series_validation(self):
        with pytest.raises(ConfigurationError):
            bin_series([1], [1, 2], 1.0)
        with pytest.raises(ConfigurationError):
            bin_series([1], [1], 0.0)

    def test_moving_average(self):
        assert moving_average([2, 4, 6], window=2) == pytest.approx([2, 3, 5])

    def test_moving_average_window_one_is_identity(self):
        assert moving_average([5, 7, 9], window=1) == pytest.approx([5, 7, 9])

    def test_moving_average_validation(self):
        with pytest.raises(ConfigurationError):
            moving_average([1], window=0)


class TestReports:
    def test_format_table_contains_headers_and_rows(self):
        text = format_table(["name", "value"], [["alpha", 1.5], ["beta", 2.0]])
        assert "name" in text and "alpha" in text and "1.500" in text

    def test_format_series(self):
        text = format_series("fig", [1, 2], [10.0, 20.0])
        assert "fig.x" in text and "20.000" in text

    def test_format_grouped(self):
        text = format_grouped("n", {"lia": {1: 5.0}, "dts": {1: 4.0, 2: 3.0}})
        assert "lia" in text and "dts" in text
        assert "nan" in text  # missing lia@2 shown as NaN


class TestCompare:
    def test_relative_saving(self):
        assert relative_saving(100.0, 80.0) == pytest.approx(0.2)

    def test_negative_saving_when_worse(self):
        assert relative_saving(100.0, 120.0) == pytest.approx(-0.2)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ConfigurationError):
            relative_saving(0.0, 10.0)

    def test_crossover_detection(self):
        xs = [0, 1, 2, 3]
        a = [0, 1, 2, 3]
        b = [3, 2, 1, 0]
        points = crossover_points(xs, a, b)
        assert len(points) == 1
        assert points[0][0] == pytest.approx(1.5)

    def test_no_crossover(self):
        assert crossover_points([0, 1], [1, 2], [5, 6]) == []

    def test_crossover_validation(self):
        with pytest.raises(ConfigurationError):
            crossover_points([0], [1, 2], [3, 4])
