"""End-to-end distributed tracing through the real UDP transport.

The acceptance contract of the tracing feature: a lossy fetch against a
tracing server produces one trace shard per side, the shards merge into
a single Perfetto-loadable document, and in that document the server's
connection span is a **child of the client's fetch span** (and subflow
spans children of the connection span) — then `obs analyze` turns the
same run into a diagnosis with a loss finding carrying evidence.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.obs.analyze import analyze, validate_diagnosis
from repro.obs.tracing import TRACE_SCHEMA
from repro.obs.trace_merge import merge_shards
from repro.transport.client import loopback_selftest

TOTAL_BYTES = 256 * 1024


@pytest.fixture(scope="module")
def traced_selftest():
    """One lossy traced loopback self-test shared by the assertions."""
    return asyncio.run(loopback_selftest(
        controller="dts", subflows=2, total_bytes=TOTAL_BYTES,
        loss_rate=0.05, loss_seed=3, timeout=60.0, trace=True))


def _spans(shard):
    return [e for e in shard["events"] if e["type"] == "span"]


def test_selftest_produces_both_shards(traced_selftest):
    r = traced_selftest
    assert r.fetch.bytes_received >= TOTAL_BYTES
    for shard in (r.client_shard, r.server_shard):
        assert shard is not None
        assert shard["schema"] == TRACE_SCHEMA
        assert shard["events"]
    assert r.client_shard["process_name"] == "loopback-fetch"
    assert r.server_shard["process_name"] == "loopback-serve"


def test_server_spans_join_the_client_trace(traced_selftest):
    r = traced_selftest
    client_trace = r.client_shard["trace_id"]
    # The server tracer keeps its own trace_id, but every event it
    # recorded for this connection rides the client's trace.
    conn = next(e for e in _spans(r.server_shard)
                if e["name"] == "serve.connection")
    assert conn["trace_id"] == client_trace


def test_cross_process_parentage(traced_selftest):
    r = traced_selftest
    fetch = next(e for e in _spans(r.client_shard)
                 if e["name"] == "fetch.transfer")
    conn = next(e for e in _spans(r.server_shard)
                if e["name"] == "serve.connection")
    subflows = [e for e in _spans(r.server_shard)
                if e["name"] == "serve.subflow"]
    assert conn["parent_span_id"] == fetch["span_id"]
    assert len(subflows) == 2
    for sub in subflows:
        assert sub["parent_span_id"] == conn["span_id"]
    assert conn["args"]["controller"] == "dts"
    assert conn["args"]["outcome"] == "done"
    assert conn["args"]["energy_j"] > 0


def test_merged_trace_is_one_timeline(traced_selftest):
    r = traced_selftest
    doc, stats = merge_shards([r.client_shard, r.server_shard])
    assert stats.orphans == 0
    assert stats.processes == ["loopback-fetch", "loopback-serve"]
    procs = {e["pid"] for e in doc["traceEvents"]
             if e.get("ph") == "M" and e["name"] == "process_name"}
    assert len(procs) == 2
    spans = {e["args"]["span_id"]: e for e in doc["traceEvents"]
             if e.get("ph") == "X"}
    fetch = next(e for e in spans.values() if e["name"] == "fetch.transfer")
    conn = next(e for e in spans.values() if e["name"] == "serve.connection")
    assert conn["args"]["parent_span_id"] == fetch["args"]["span_id"]
    assert conn["pid"] != fetch["pid"]
    # Perfetto-loadable: plain JSON with the traceEvents array shape.
    json.dumps(doc)


def test_analyze_finds_the_injected_loss(traced_selftest):
    r = traced_selftest
    doc, _ = merge_shards([r.client_shard, r.server_shard])
    report = analyze(traces=[doc])
    assert validate_diagnosis(report) == []
    loss = [f for f in report["findings"] if f["kind"] == "loss"]
    assert loss, [f["kind"] for f in report["findings"]]
    assert loss[0]["evidence"], "loss finding must carry evidence pointers"
    assert all(e["type"] == "span" for e in loss[0]["evidence"])
    # The critical path crosses from the client into the server.
    [path] = [p for p in report["critical_paths"]
              if p["root"] == "fetch.transfer"]
    names = [s["name"] for s in path["steps"]]
    assert "serve.connection" in names
    # Controller attribution comes straight from the connection span.
    assert report["controllers"]["dts"]["connections"] == 1
    assert report["controllers"]["dts"]["joules_per_bit"] > 0


def test_untraced_selftest_has_no_shards():
    r = asyncio.run(loopback_selftest(
        controller="dts", subflows=1, total_bytes=64 * 1024,
        loss_rate=0.0, timeout=60.0))
    assert r.client_shard is None
    assert r.server_shard is None
    d = r.to_dict()
    assert "client_shard" not in d and "server_shard" not in d
