"""Paper-scale preset sanity tests (presets must stay valid run() kwargs)."""

import inspect

from repro.experiments import (
    fig01_power_vs_subflows,
    fig02_mobile_power,
    fig03_energy_vs_throughput,
    fig06_shared_bottleneck,
    fig07_traffic_shifting,
    fig10_ec2,
    fig12_14_subflows,
    fig15_phi,
    fig17_wireless,
    paper_scale,
)


def accepts(func, kwargs):
    params = inspect.signature(func).parameters
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()):
        return True
    return all(k in params for k in kwargs)


def test_fig01_preset_matches_signature():
    assert accepts(fig01_power_vs_subflows.run, paper_scale.FIG01)


def test_fig02_preset_matches_signature():
    assert accepts(fig02_mobile_power.run, paper_scale.FIG02)


def test_fig03_preset_matches_signature():
    assert accepts(fig03_energy_vs_throughput.run, paper_scale.FIG03)


def test_fig06_preset_matches_signature():
    assert accepts(fig06_shared_bottleneck.run, paper_scale.FIG06)
    assert paper_scale.FIG06["user_counts"] == [10, 20, 50, 100]
    assert paper_scale.FIG06["transfer_bytes"] == 16_000_000


def test_fig07_preset_matches_signature():
    assert accepts(fig07_traffic_shifting.run, paper_scale.FIG07)
    assert paper_scale.FIG07["mean_burst_interval"] == 10.0
    assert paper_scale.FIG07["mean_burst_duration"] == 5.0


def test_fig10_preset_matches_signature():
    assert accepts(fig10_ec2.run, paper_scale.FIG10)
    assert paper_scale.FIG10["n_hosts"] == 40


def test_fig12_14_preset_matches_signature():
    assert accepts(fig12_14_subflows.run_fig12, paper_scale.FIG12_14)
    assert paper_scale.FIG12_14["duration"] == 1000.0
    assert len(paper_scale.FIG12_14["seeds"]) == 10


def test_fig15_preset_matches_signature():
    assert accepts(fig15_phi.run, paper_scale.FIG15)
    assert paper_scale.FIG15["n_subflows"] == 8


def test_fig17_preset_matches_signature():
    assert accepts(fig17_wireless.run, paper_scale.FIG17)
    assert paper_scale.FIG17["duration"] == 200.0


def test_paper_dc_delay():
    assert paper_scale.PAPER_DC_LINK_DELAY == 0.1
