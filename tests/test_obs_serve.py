"""Campaign progress streaming and ``obs serve`` end to end.

The executor must leave queued/progress breadcrumbs in its telemetry
JSONL while it runs, and ``repro.obs.serve`` must turn that file —
even mid-append — into live series, Prometheus text, and a dashboard.
"""

import asyncio
import json

from repro.campaign import (
    CampaignExecutor,
    CampaignTelemetry,
    ResultCache,
    RunSpec,
)
from repro.obs.serve import TelemetryMonitor, start_serve

FAST = dict(topology="bcube", duration=0.4, dt=0.01)


def _specs(n=2):
    return [RunSpec(n_subflows=1, seed=seed, **FAST)
            for seed in range(1, n + 1)]


def _run_campaign(tmp_path, n=2):
    log = tmp_path / "telemetry.jsonl"
    tel = CampaignTelemetry(log_path=log)
    outcomes = CampaignExecutor(jobs=1, telemetry=tel,
                                cache=ResultCache(tmp_path / "c")).run(
                                    _specs(n))
    assert all(o.ok for o in outcomes)
    return log, [json.loads(line) for line in log.read_text().splitlines()]


# ------------------------------------------------- executor streaming events

def test_executor_emits_queued_and_progress_events(tmp_path):
    log, records = _run_campaign(tmp_path, n=2)
    events = [r["event"] for r in records]
    assert events.count("run_queued") == 2
    queued = [r for r in records if r["event"] == "run_queued"]
    assert {"spec_hash", "topology", "algorithm", "n_subflows",
            "seed"} <= set(queued[0])
    # queued before any run starts
    assert events.index("run_queued") < events.index("run_started")

    progress = [r for r in records if r["event"] == "progress"]
    assert len(progress) >= 3  # after cache scan + after each run
    assert progress[0]["done"] == 0
    assert progress[-1]["done"] == progress[-1]["total"] == 2
    assert all(p["failed"] == 0 for p in progress)
    # a mid-campaign progress event extrapolates an ETA
    mid = [p for p in progress if 0 < p["done"] < p["total"]]
    assert mid and all(p["eta_s"] > 0 for p in mid)
    # done/total never regress
    dones = [p["done"] for p in progress]
    assert dones == sorted(dones)


def test_progress_counts_cache_hits_on_rerun(tmp_path):
    cache = ResultCache(tmp_path / "c")
    specs = _specs(2)
    CampaignExecutor(jobs=1, cache=cache).run(specs)
    log = tmp_path / "second.jsonl"
    tel = CampaignTelemetry(log_path=log)
    CampaignExecutor(jobs=1, cache=cache, telemetry=tel).run(specs)
    records = [json.loads(line) for line in log.read_text().splitlines()]
    progress = [r for r in records if r["event"] == "progress"]
    assert progress[-1]["cache_hits"] == 2
    assert progress[-1]["done"] == 2


# ------------------------------------------------------------ the monitor

def test_monitor_folds_records_into_instruments(tmp_path):
    log = tmp_path / "telemetry.jsonl"
    lines = [
        {"ts": 1.0, "event": "campaign_started", "n_specs": 2},
        {"ts": 1.1, "event": "run_queued", "spec_hash": "aa"},
        {"ts": 1.2, "event": "run_queued", "spec_hash": "bb"},
        {"ts": 1.3, "event": "progress", "done": 0, "total": 2,
         "failed": 0, "cache_hits": 0, "eta_s": None},
        {"ts": 1.4, "event": "run_started", "spec_hash": "aa"},
        {"ts": 2.0, "event": "run_completed", "spec_hash": "aa",
         "cached": True},
        {"ts": 2.1, "event": "progress", "done": 1, "total": 2,
         "failed": 0, "cache_hits": 1, "eta_s": 0.7},
        {"ts": 2.5, "event": "run_failed", "spec_hash": "bb"},
    ]
    log.write_text("".join(json.dumps(rec) + "\n" for rec in lines))
    monitor = TelemetryMonitor(log, interval=0.01)
    assert monitor.poll() == len(lines)

    snap = monitor.registry.snapshot()
    assert snap["campaign.runs_queued"] == 2
    assert snap["campaign.runs_completed"] == 1
    assert snap["campaign.cache_hits"] == 1
    assert snap["campaign.runs_failed"] == 1
    assert snap["campaign.done"] == 1.0
    assert snap["campaign.total"] == 2.0
    assert snap["campaign.eta_s"] == 0.7

    # every record became a flight event, original ts preserved
    assert monitor.flight.counts["run_queued"] == 2
    queued = monitor.flight.events(kinds={"run_queued"})
    assert queued[0].fields["src_ts"] == 1.1

    # the recorder sampled: progress gauges have a series
    series = monitor.recorder.snapshot()["series"]
    assert series["campaign.done"]["points"]
    assert monitor.poll() == 0  # idempotent on no new data


async def _http_get(port, path):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"GET {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode())
    await writer.drain()
    raw = await asyncio.wait_for(reader.read(-1), timeout=10)
    writer.close()
    return raw.partition(b"\r\n\r\n")[2]


async def _serve_live(tmp_path):
    from repro.obs.prom import parse_exposition, validate_exposition

    log = tmp_path / "telemetry.jsonl"
    log.write_text(json.dumps(
        {"ts": 1.0, "event": "campaign_started", "n_specs": 3}) + "\n")
    handle = await start_serve(log, port=0, interval=0.05)
    try:
        await asyncio.sleep(0.15)
        # Append while serving — including a torn partial line first.
        with open(log, "a") as fh:
            fh.write(json.dumps({"ts": 2.0, "event": "run_queued",
                                 "spec_hash": "aa"}) + "\n")
            fh.write('{"ts": 2.1, "event": "run_sta')
            fh.flush()
            await asyncio.sleep(0.15)
            fh.write('rted", "spec_hash": "aa"}\n')
            fh.write(json.dumps({"ts": 2.2, "event": "progress", "done": 1,
                                 "total": 3, "failed": 0, "cache_hits": 0,
                                 "eta_s": 4.2}) + "\n")
        await asyncio.sleep(0.2)

        assert handle.monitor.records_seen == 4
        assert handle.monitor.tailer.bad_lines == 0  # torn line carried over

        body = await _http_get(handle.port, "/series")
        series = json.loads(body)["series"]
        assert series["campaign.done"]["points"]
        assert series["campaign.eta_s"]["points"][-1][1] == 4.2

        body = await _http_get(handle.port, "/metrics.prom")
        text = body.decode()
        assert validate_exposition(text) == []
        samples = parse_exposition(text)
        assert samples["campaign_runs_queued_total"] == [({}, 1.0)]
        assert samples["campaign_done"] == [({}, 1.0)]

        body = await _http_get(handle.port, "/events")
        counts = json.loads(body)["counts"]
        assert counts["run_queued"] == 1 and counts["progress"] == 1

        body = await _http_get(handle.port, "/dashboard")
        assert b"EventSource" in body and b"telemetry.jsonl" in body

        body = await _http_get(handle.port, "/metrics")
        doc = json.loads(body)
        assert doc["records_seen"] == 4
        assert doc["registry"]["campaign.total"] == 3.0
    finally:
        await handle.stop()


def test_obs_serve_tails_a_live_log(tmp_path):
    asyncio.run(_serve_live(tmp_path))
