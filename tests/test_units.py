"""Unit-helper tests."""

import math

import pytest

from repro import units


def test_kbps():
    assert units.kbps(5) == 5e3


def test_mbps():
    assert units.mbps(100) == 100e6


def test_gbps():
    assert units.gbps(1) == 1e9


def test_to_mbps_roundtrip():
    assert units.to_mbps(units.mbps(42)) == pytest.approx(42)


def test_us():
    assert units.us(500) == pytest.approx(5e-4)


def test_ms():
    assert units.ms(20) == pytest.approx(0.020)


def test_to_ms_roundtrip():
    assert units.to_ms(units.ms(7.5)) == pytest.approx(7.5)


def test_kib():
    assert units.kib(64) == 65536


def test_mib():
    assert units.mib(1) == 1048576


def test_gib():
    assert units.gib(1) == 1073741824


def test_mb():
    assert units.mb(16) == 16_000_000


def test_gb():
    assert units.gb(10) == 10_000_000_000


def test_bytes_to_bits():
    assert units.bytes_to_bits(1500) == 12000


def test_bits_to_bytes():
    assert units.bits_to_bytes(12000) == 1500


def test_transmission_time():
    # 1500 bytes at 100 Mbps = 120 microseconds.
    assert units.transmission_time(1500, units.mbps(100)) == pytest.approx(120e-6)


def test_transmission_time_rejects_zero_rate():
    with pytest.raises(ValueError):
        units.transmission_time(1500, 0)


def test_transmission_time_rejects_negative_rate():
    with pytest.raises(ValueError):
        units.transmission_time(1500, -1)


def test_watts_milliwatts_roundtrip():
    assert units.milliwatts(units.watts_to_milliwatts(1.5)) == pytest.approx(1.5)


def test_joules_per_gb():
    assert units.joules_per_gb(500.0, 2e9) == pytest.approx(250.0)


def test_joules_per_gb_zero_data_is_infinite():
    assert math.isinf(units.joules_per_gb(500.0, 0))


def test_default_mss_smaller_than_packet():
    assert units.DEFAULT_MSS < units.DEFAULT_PACKET_BYTES


def test_ack_bytes_positive():
    assert 0 < units.ACK_BYTES < units.DEFAULT_MSS
