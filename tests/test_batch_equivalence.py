"""Property-based equivalence: the batched struct-of-arrays engine is
bit-for-bit indistinguishable from the scalar oracle.

The contract (repro.net.batch.model): for any scenario — any mix of
controllers, path shapes, loss rates, transfer sizes — both engines
produce identical state trajectories (every per-round subflow record),
identical final states, identical result payloads, and leave the shared
RNG stream in the same terminal state.  Equality is exact (`==` on
floats), never approximate.
"""

from __future__ import annotations

import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.net.batch import (
    BatchConnection,
    BatchEngine,
    BatchPath,
    BatchScenario,
    OracleEngine,
    ec2_scenario,
)

#: Every vectorized algorithm plus a spread of scalar-resident ones
#: (which exercise the permanent-fallback lanes alongside vector lanes).
ALGORITHMS = ("dts", "lia", "olia", "reno", "balia", "dts-ext", "wvegas")


def _build_scenario(path_data, conn_data, duration, tick, seed):
    paths = tuple(
        BatchPath(
            base_rtt=base_rtt,
            rate_bps=rate_mbps * 1e6,
            loss_rate=loss,
            queue_segments=queue,
        )
        for base_rtt, rate_mbps, loss, queue in path_data
    )
    conns = tuple(
        BatchConnection(
            paths=paths[:n_paths],
            algorithm=algo,
            total_segments=total,
            initial_cwnd=float(cwnd0),
            rwnd_segments=float(rwnd),
        )
        for algo, n_paths, total, cwnd0, rwnd in conn_data
    )
    return BatchScenario(connections=conns, duration=duration, tick=tick,
                         seed=seed)


def _assert_engines_equivalent(scenario):
    oracle = OracleEngine(scenario, record=True).run()
    batch = BatchEngine(scenario, record=True,
                        compact_min_rows=2, compact_fraction=0.0).run()
    # State trajectories: every (tick, gid, slot) record, bit for bit.
    assert len(oracle.trajectory) == len(batch.trajectory)
    for i, (a, b) in enumerate(zip(oracle.trajectory, batch.trajectory)):
        assert a == b, f"trajectory diverged at round {i}:\n{a}\n{b}"
    # Terminal per-subflow state.
    assert oracle.final_state() == batch.final_state()
    # Result payloads, byte for byte through JSON.
    assert (json.dumps(oracle.result(), sort_keys=True)
            == json.dumps(batch.result(), sort_keys=True))
    # Both engines consumed the shared RNG stream identically.
    assert oracle.rng_state() == batch.rng_state()
    return oracle, batch


path_strategy = st.tuples(
    st.sampled_from([0.001, 0.002, 0.004, 0.012, 0.03]),   # base_rtt
    st.sampled_from([8.0, 16.0, 48.0, 96.0, 256.0]),       # rate (Mbps)
    st.sampled_from([0.0, 0.001, 0.02, 0.1, 0.3]),         # loss_rate
    st.integers(0, 32),                                     # queue_segments
)

conn_strategy = st.tuples(
    st.sampled_from(ALGORITHMS),
    st.integers(1, 3),                                      # n_paths
    st.one_of(st.none(), st.integers(1, 600)),              # total_segments
    st.integers(1, 12),                                     # initial_cwnd
    st.integers(4, 48),                                     # rwnd_segments
)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    path_data=st.lists(path_strategy, min_size=3, max_size=3),
    conn_data=st.lists(conn_strategy, min_size=1, max_size=6),
    duration=st.sampled_from([0.1, 0.3, 0.8]),
    tick=st.sampled_from([5e-4, 1e-3, 4e-3]),
    seed=st.integers(0, 10_000),
)
def test_batch_engine_bit_identical_to_oracle(path_data, conn_data,
                                              duration, tick, seed):
    """Random controller mixes, path shapes, loss rates, and transfer
    sizes: trajectories, final states, results, and RNG state all match
    the scalar oracle exactly."""
    scenario = _build_scenario(path_data, conn_data, duration, tick, seed)
    _assert_engines_equivalent(scenario)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    algorithm=st.sampled_from(["dts", "lia"]),
    n_subflows=st.integers(1, 4),
    loss_rate=st.sampled_from([0.0, 0.001, 0.05]),
    seed=st.integers(0, 1000),
)
def test_ec2_scenario_equivalence(algorithm, n_subflows, loss_rate, seed):
    """The canonical EC2 scenario (what the campaign executor and the
    megascale bench run) is equivalent under both engines, and the
    vectorized algorithms actually take the vector path."""
    scenario = ec2_scenario(n_hosts=4, n_subflows=n_subflows,
                            algorithm=algorithm, loss_rate=loss_rate,
                            duration=0.3, seed=seed)
    _oracle, batch = _assert_engines_equivalent(scenario)
    assert batch.counters["vector_rounds"] > 0


def test_vector_and_fallback_rounds_both_exercised():
    """The headline example is only convincing if both code paths run:
    a lossy DTS scenario must split rounds between the vector kernels
    (clean rounds) and the scalar fallback (lossy rounds)."""
    scenario = ec2_scenario(n_hosts=6, n_subflows=3, algorithm="dts",
                            loss_rate=0.02, duration=0.5, seed=42)
    _oracle, batch = _assert_engines_equivalent(scenario)
    assert batch.counters["vector_rounds"] > 0
    assert batch.counters["fallback_rounds"] > 0


def test_scalar_resident_controllers_match():
    """Controllers without vector kernels (permanent fallback lanes)
    still go through the same array-backed state, and must match the
    oracle exactly too."""
    paths = (BatchPath(base_rtt=0.004, rate_bps=32e6, loss_rate=0.01,
                       queue_segments=8),)
    conns = tuple(
        BatchConnection(paths=paths, algorithm=algo)
        for algo in ("olia", "balia", "reno", "dts-ext", "wvegas", "ewtcp",
                     "coupled", "ecmtcp")
    )
    scenario = BatchScenario(connections=conns, duration=0.4, tick=1e-3,
                             seed=9)
    _oracle, batch = _assert_engines_equivalent(scenario)
    assert batch.counters["vector_rounds"] == 0
    assert batch.counters["fallback_rounds"] > 0
