"""MPTCP subflow-scheduler tests."""

import pytest

from repro.errors import ConfigurationError
from repro.net.network import Network
from repro.net.queues import DropTailQueue
from repro.net.scheduler import (
    GreedyScheduler,
    MinRttScheduler,
    RoundRobinScheduler,
    create_scheduler,
)
from repro.units import mbps, mib, ms
from repro.workloads.streaming import attach_streaming_source


def asymmetric_net(seed=1):
    """Two paths: fast 10 ms and slow 100 ms, both far from saturation."""
    net = Network(seed=seed)
    a, b = net.add_host("a"), net.add_host("b")
    routes = []
    for i, d in enumerate((ms(10), ms(100))):
        s = net.add_switch(f"s{i}")
        net.link(a, s, rate_bps=mbps(100), delay=d / 2,
                 queue_factory=lambda: DropTailQueue(limit_packets=200))
        net.link(s, b, rate_bps=mbps(100), delay=d / 2,
                 queue_factory=lambda: DropTailQueue(limit_packets=200))
        routes.append(net.route([a, s, b]))
    return net, routes


class TestRegistry:
    def test_create_by_name(self):
        assert isinstance(create_scheduler("greedy"), GreedyScheduler)
        assert isinstance(create_scheduler("minrtt"), MinRttScheduler)
        assert isinstance(create_scheduler("RoundRobin"), RoundRobinScheduler)

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            create_scheduler("blest")


class TestMinRtt:
    def test_app_limited_stream_prefers_fast_path(self):
        net, routes = asymmetric_net()
        conn = net.connection(routes, "lia", total_bytes=None,
                              scheduler="minrtt")
        attach_streaming_source(conn, bitrate_bps=mbps(5))
        conn.start()
        net.run(until=15.0)
        fast, slow = conn.subflows
        assert fast.acked > 5 * max(slow.acked, 1)

    def test_minrtt_concentrates_more_than_greedy(self):
        def slow_share(scheduler_kwargs):
            net, routes = asymmetric_net()
            conn = net.connection(routes, "lia", total_bytes=None,
                                  **scheduler_kwargs)
            attach_streaming_source(conn, bitrate_bps=mbps(5))
            conn.start()
            net.run(until=15.0)
            fast, slow = conn.subflows
            return slow.acked / max(fast.acked + slow.acked, 1)

        assert slow_share({"scheduler": "minrtt"}) <= slow_share({})

    def test_bulk_transfer_still_uses_both_paths(self):
        # Window-limited transfers overflow the fast path's window, so the
        # slow path still carries real traffic under minRTT.
        net, routes = asymmetric_net()
        conn = net.connection(routes, "lia", total_bytes=mib(8),
                              scheduler="minrtt")
        conn.start()
        net.run_until_complete([conn], timeout=60)
        assert conn.completed
        fast, slow = conn.subflows
        assert slow.acked > 0

    def test_no_starvation_when_fast_path_window_full(self):
        net, routes = asymmetric_net()
        conn = net.connection(routes, "lia", total_bytes=mib(4),
                              scheduler="minrtt")
        conn.start()
        net.run_until_complete([conn], timeout=60)
        assert conn.completed


class TestRoundRobin:
    def test_balances_app_limited_traffic(self):
        net, routes = asymmetric_net()
        conn = net.connection(routes, "lia", total_bytes=None,
                              scheduler="roundrobin")
        attach_streaming_source(conn, bitrate_bps=mbps(5))
        conn.start()
        net.run(until=15.0)
        fast, slow = conn.subflows
        ratio = fast.acked / max(slow.acked, 1)
        assert 0.4 < ratio < 3.0

    def test_bulk_transfer_completes(self):
        net, routes = asymmetric_net()
        conn = net.connection(routes, "olia", total_bytes=mib(4),
                              scheduler="roundrobin")
        conn.start()
        net.run_until_complete([conn], timeout=60)
        assert conn.completed


class TestSchedulerTotals:
    @pytest.mark.parametrize("scheduler", ["greedy", "minrtt", "roundrobin"])
    def test_no_segments_lost_or_duplicated(self, scheduler):
        net, routes = asymmetric_net(seed=4)
        kwargs = {} if scheduler == "greedy" else {"scheduler": scheduler}
        conn = net.connection(routes, "lia", total_bytes=mib(2), **kwargs)
        conn.start()
        net.run_until_complete([conn], timeout=60)
        assert conn.completed
        assert sum(sf.acked for sf in conn.subflows) == conn.supply.total
        assert conn.supply.assigned == conn.supply.total
