"""Energy model tests: CPU, radios, mobile device, switches, accounting."""

import pytest
from hypothesis import given, strategies as st

from repro.energy.accounting import integrate_power, transfer_energy
from repro.energy.cpu import (
    HostPowerModel,
    WiredPathPower,
    WirelessPathPower,
    default_wired_host,
    default_wireless_host,
)
from repro.energy.mobile import nexus5
from repro.energy.nic import LteRadio, WifiRadio
from repro.energy.switch import SwitchPowerModel, fast_switch
from repro.errors import ConfigurationError
from repro.units import mb, mbps


class TestWiredCalibration:
    def test_fifteen_percent_rise_200_to_1000(self):
        host = default_wired_host()
        p200 = host.single_path_power(mbps(200), 0.02)
        p1000 = host.single_path_power(mbps(1000), 0.02)
        assert (p1000 - p200) / p200 == pytest.approx(0.15, abs=0.01)

    def test_nonlinear_concave(self):
        model = WiredPathPower()
        # Doubling the throughput less than doubles the marginal power.
        assert model.marginal_power(mbps(800)) < 2 * model.marginal_power(mbps(400))

    def test_monotone_in_throughput(self):
        model = WiredPathPower()
        powers = [model.marginal_power(mbps(b)) for b in (100, 300, 600, 1000)]
        assert powers == sorted(powers)

    def test_zero_throughput_zero_marginal(self):
        assert WiredPathPower().marginal_power(0) == 0.0


class TestWirelessCalibration:
    def test_ninety_percent_rise_10_to_50(self):
        host = default_wireless_host()
        # Two paths carrying half the aggregate each (the Fig. 3b setup).
        p10 = host.power([(mbps(5), 0.03), (mbps(5), 0.03)])
        p50 = host.power([(mbps(25), 0.03), (mbps(25), 0.03)])
        assert (p50 - p10) / p10 == pytest.approx(0.9, abs=0.1)

    def test_linear_above_duty_cycle_knee(self):
        model = WirelessPathPower()
        p20 = model.marginal_power(mbps(20))
        p40 = model.marginal_power(mbps(40))
        p60 = model.marginal_power(mbps(60))
        assert p40 - p20 == pytest.approx(p60 - p40, rel=1e-6)

    def test_duty_cycle_discounts_trickle(self):
        model = WirelessPathPower()
        trickle = model.marginal_power(mbps(0.1))
        active = model.marginal_power(mbps(5))
        assert trickle < 0.2 * active


class TestRttFactor:
    def test_power_rises_with_rtt(self):
        model = WiredPathPower()
        low = model.power(mbps(100), 0.02)
        high = model.power(mbps(100), 0.2)
        assert high > low

    def test_no_penalty_below_reference(self):
        model = WiredPathPower()
        assert model.power(mbps(100), 0.01) == pytest.approx(
            model.power(mbps(100), 0.04)
        )

    def test_negative_inputs_rejected(self):
        model = WiredPathPower()
        with pytest.raises(ConfigurationError):
            model.power(-1, 0.05)
        with pytest.raises(ConfigurationError):
            model.power(mbps(10), -0.05)

    @given(st.floats(min_value=0, max_value=1e9),
           st.floats(min_value=0, max_value=2.0))
    def test_property_power_nonnegative(self, tau, rtt):
        assert WiredPathPower().power(tau, rtt) >= 0.0


class TestHostModel:
    def test_subflow_overhead(self):
        host = default_wired_host()
        base = host.power([(mbps(100), 0.02)], n_subflows=1)
        more = host.power([(mbps(100), 0.02)], n_subflows=5)
        assert more - base == pytest.approx(4 * host.subflow_overhead_w)

    def test_splitting_fixed_rate_increases_power(self):
        # Concave per-path power: MPTCP splitting costs more (Fig. 1).
        host = default_wired_host()
        single = host.power([(mbps(200), 0.02)])
        split = host.power([(mbps(100), 0.02), (mbps(100), 0.02)])
        assert split > single

    def test_mptcp_exceeds_tcp_at_same_aggregate(self):
        host = default_wired_host()
        tcp = host.single_path_power(mbps(100), 0.02)
        mptcp = host.power([(mbps(50), 0.02), (mbps(50), 0.02)], n_subflows=2)
        assert mptcp > tcp


class TestRadios:
    def test_wifi_active_power_formula(self):
        radio = WifiRadio()
        watts = radio.active_power(mbps(10))
        assert watts == pytest.approx((132.86 + 137.01 * 10) / 1000)

    def test_lte_base_exceeds_wifi(self):
        assert LteRadio().active_power(0.1) > WifiRadio().active_power(0.1)

    def test_lte_overhead_includes_promotion_and_tail(self):
        lte = LteRadio()
        expected = (1210.7 * 0.26 + 1060.0 * 11.576) / 1000
        assert lte.fixed_overhead_energy() == pytest.approx(expected)

    def test_wifi_overhead_negligible(self):
        assert WifiRadio().fixed_overhead_energy() == 0.0

    def test_transfer_energy_includes_overheads(self):
        lte = LteRadio()
        energy = lte.transfer_energy(mb(10), mbps(10))
        duration = mb(10) * 8 / mbps(10)
        assert energy == pytest.approx(
            lte.active_power(mbps(10)) * duration + lte.fixed_overhead_energy()
        )

    def test_transfer_energy_validates_rate(self):
        with pytest.raises(ConfigurationError):
            WifiRadio().transfer_energy(mb(1), 0)

    def test_lte_tail_state_machine(self):
        lte = LteRadio()
        active = lte.power_at(10.0, mbps(5))
        tail = lte.power_at(15.0, 0.0)
        idle = lte.power_at(40.0, 0.0)
        assert active > tail > idle
        assert tail == pytest.approx(1.060)


class TestMobileDevice:
    def test_mptcp_pays_for_both_radios(self):
        phone = nexus5()
        wifi_only = phone.transfer_power({"wifi": mbps(8)})
        both = phone.transfer_power({"wifi": mbps(8), "lte": mbps(8)})
        assert both > wifi_only + 0.5  # at least the LTE beta difference

    def test_idle_radio_still_draws_idle_power(self):
        phone = nexus5()
        power = phone.transfer_power({"wifi": mbps(8)})
        assert power > WifiRadio().active_power(mbps(8))  # + baseline + lte idle

    def test_unknown_radio_rejected(self):
        with pytest.raises(ConfigurationError):
            nexus5().transfer_power({"bluetooth": mbps(1)})

    def test_transfer_energy_requires_traffic(self):
        with pytest.raises(ConfigurationError):
            nexus5().transfer_energy(mb(1), {"wifi": 0.0})

    def test_transfer_energy_scales_with_data(self):
        phone = nexus5()
        small = phone.transfer_energy(mb(1), {"wifi": mbps(8)},
                                      include_overheads=False)
        large = phone.transfer_energy(mb(2), {"wifi": mbps(8)},
                                      include_overheads=False)
        assert large == pytest.approx(2 * small)


class TestSwitch:
    def test_port_power_bounds(self):
        model = SwitchPowerModel()
        assert model.port_power(0.0) == model.port_idle_w
        assert model.port_power(1.0) == model.port_max_w
        assert model.port_power(2.0) == model.port_max_w  # clamped

    def test_total_power(self):
        model = SwitchPowerModel(chassis_w=10, port_idle_w=1, port_max_w=2)
        assert model.power([0.0, 1.0]) == pytest.approx(10 + 1 + 2)

    def test_energy(self):
        model = SwitchPowerModel(chassis_w=10, port_idle_w=0, port_max_w=0)
        assert model.energy([], 5.0) == pytest.approx(50.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            SwitchPowerModel().energy([], -1.0)

    def test_invalid_port_range_rejected(self):
        with pytest.raises(ConfigurationError):
            SwitchPowerModel(port_idle_w=2.0, port_max_w=1.0)

    def test_fast_switch_hungrier(self):
        assert fast_switch().power([1.0]) > SwitchPowerModel().power([1.0])


class TestAccounting:
    def test_integrate_power_trapezoid(self):
        # Constant 10 W over 2 s = 20 J.
        assert integrate_power([0, 1, 2], [10, 10, 10]) == pytest.approx(20.0)

    def test_integrate_power_ramp(self):
        # Linear 0 -> 10 W over 2 s = 10 J.
        assert integrate_power([0, 2], [0, 10]) == pytest.approx(10.0)

    def test_integrate_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            integrate_power([0, 1], [1.0])

    def test_transfer_energy_eq2(self):
        host = HostPowerModel(path_model=WiredPathPower(), idle_w=10,
                              subflow_overhead_w=0)
        paths = [(mbps(50), 0.02), (mbps(50), 0.02)]
        duration = mb(10) * 8 / mbps(100)
        assert transfer_energy(mb(10), host, paths) == pytest.approx(
            host.power(paths) * duration
        )

    def test_transfer_energy_requires_throughput(self):
        host = default_wired_host()
        with pytest.raises(ConfigurationError):
            transfer_energy(mb(1), host, [(0.0, 0.02)])

    def test_higher_throughput_means_less_energy(self):
        # The Fig. 3(a) claim: energy falls with throughput.
        host = default_wired_host()
        slow = transfer_energy(mb(100), host, [(mbps(100), 0.02), (mbps(100), 0.02)])
        fast = transfer_energy(mb(100), host, [(mbps(500), 0.02), (mbps(500), 0.02)])
        assert fast < slow
