"""Fluid-model trajectory (Eq. 3 ODE) tests."""

import numpy as np
import pytest

from repro.core import decomposition, reno_window, solve_equilibrium
from repro.core.model import CongestionModel, make_psi_dts
from repro.core.trajectories import (
    constant,
    integrate_model,
    responsiveness,
    step,
)
from repro.errors import ModelError


class TestEnvironments:
    def test_constant(self):
        env = constant([0.05, 0.1])
        assert list(env(0.0)) == [0.05, 0.1]
        assert list(env(100.0)) == [0.05, 0.1]

    def test_step(self):
        env = step([0.01], [0.05], at=5.0)
        assert env(4.9)[0] == 0.01
        assert env(5.1)[0] == 0.05

    def test_step_shape_mismatch(self):
        with pytest.raises(ModelError):
            step([0.01], [0.05, 0.05], at=1.0)


class TestIntegration:
    def test_single_path_converges_to_reno_equilibrium(self):
        model = decomposition("olia")
        rtt, loss = 0.05, 0.01
        traj = integrate_model(
            model, rtt=constant([rtt]), loss=constant([loss]),
            x0=[10.0], duration=120.0,
        )
        expected_rate = reno_window(loss) / rtt
        assert traj.rates[0, -1] == pytest.approx(expected_rate, rel=0.05)

    def test_equilibrium_matches_solver(self):
        model = decomposition("balia")
        rtt = np.array([0.04, 0.08])
        loss = np.array([0.01, 0.02])
        traj = integrate_model(
            model, rtt=constant(rtt), loss=constant(loss),
            x0=[50.0, 50.0], duration=200.0,
        )
        solved = solve_equilibrium(model, rtt, loss)
        assert traj.rates[:, -1] == pytest.approx(solved.x, rel=0.1)

    def test_invalid_initial_rates_rejected(self):
        with pytest.raises(ModelError):
            integrate_model(
                decomposition("lia"), rtt=constant([0.05]),
                loss=constant([0.01]), x0=[0.0], duration=1.0,
            )

    def test_environment_shape_validated(self):
        with pytest.raises(ModelError):
            integrate_model(
                decomposition("lia"), rtt=constant([0.05, 0.05]),
                loss=constant([0.01]), x0=[10.0], duration=1.0,
            )

    def test_loss_step_shrinks_rate(self):
        model = decomposition("lia")
        traj = integrate_model(
            model,
            rtt=constant([0.05, 0.05]),
            loss=step([0.005, 0.005], [0.005, 0.08], at=40.0),
            x0=[100.0, 100.0],
            duration=120.0,
        )
        # After the loss step, the second path's rate collapses while the
        # first recovers the slack.
        mid = np.searchsorted(traj.times, 39.0)
        assert traj.rates[1, -1] < 0.5 * traj.rates[1, mid]
        assert traj.rates[0, -1] > traj.rates[0, mid]

    def test_total_rate_and_final_state(self):
        model = decomposition("olia")
        traj = integrate_model(
            model, rtt=constant([0.05]), loss=constant([0.01]),
            x0=[10.0], duration=30.0,
        )
        assert traj.total_rate.shape == traj.times.shape
        state = traj.final_state(np.array([0.05]))
        assert state.w[0] == pytest.approx(traj.rates[0, -1] * 0.05)


class TestResponsiveness:
    def test_settling_time_positive_and_bounded(self):
        t = responsiveness(
            decomposition("lia"), rtt=[0.05, 0.05], loss=[0.01, 0.01],
            x0=[1.0, 1.0], duration=120.0,
        )
        assert 0.0 < t <= 120.0

    def test_balia_responds_faster_than_lia_from_cold(self):
        """Balia's psi > 1 off-equilibrium buys responsiveness — the
        tradeoff Section V.A discusses."""
        kwargs = dict(rtt=[0.05, 0.05], loss=[0.01, 0.01],
                      x0=[1.0, 1.0], duration=200.0)
        t_lia = responsiveness(decomposition("lia"), **kwargs)
        t_balia = responsiveness(decomposition("balia"), **kwargs)
        assert t_balia <= t_lia * 1.05

    def test_dts_on_clean_paths_faster_than_olia(self):
        """On un-queued paths eps ~ 2: DTS doubles the increase aggression
        relative to the psi = 1 OLIA term."""
        kwargs = dict(rtt=[0.05, 0.05], loss=[0.01, 0.01],
                      x0=[1.0, 1.0], duration=200.0)
        t_dts = responsiveness(
            CongestionModel("dts", make_psi_dts()), **kwargs
        )
        t_olia = responsiveness(decomposition("olia"), **kwargs)
        assert t_dts < t_olia


class TestDtsTrajectoryBehaviour:
    def test_dts_abandons_queue_inflated_path(self):
        """With base_rtt fixed at the propagation floor, RTT inflation on
        one path freezes its growth (eps -> 0) so its equilibrium falls far
        below the equivalent OLIA share. The inflated path's loss rate is
        set so plain OLIA is indifferent (p * RTT^2 equalized) and keeps
        using it — isolating the epsilon factor's contribution."""
        base = constant([0.05, 0.05])
        rtt = constant([0.05, 0.143])  # ratio 0.35: eps ~ 0.36
        loss = constant([0.01, 0.01 * (0.05 / 0.143) ** 2])

        dts = integrate_model(
            CongestionModel("dts", make_psi_dts()),
            rtt=rtt, loss=loss, base_rtt=base, x0=[10.0, 10.0], duration=150.0,
        )
        olia = integrate_model(
            decomposition("olia"),
            rtt=rtt, loss=loss, base_rtt=base, x0=[10.0, 10.0], duration=150.0,
        )
        dts_share = dts.rates[1, -1] / dts.total_rate[-1]
        olia_share = olia.rates[1, -1] / olia.total_rate[-1]
        assert dts_share < 0.6 * olia_share
