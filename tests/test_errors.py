"""Exception-hierarchy tests."""

import pytest

from repro import errors


@pytest.mark.parametrize(
    "exc",
    [
        errors.ConfigurationError,
        errors.SimulationError,
        errors.RoutingError,
        errors.AlgorithmError,
        errors.ModelError,
    ],
)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, errors.ReproError)


def test_repro_error_is_exception():
    assert issubclass(errors.ReproError, Exception)


def test_catching_base_catches_all():
    with pytest.raises(errors.ReproError):
        raise errors.RoutingError("nope")


def test_messages_preserved():
    err = errors.ConfigurationError("bad knob")
    assert "bad knob" in str(err)
