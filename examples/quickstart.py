#!/usr/bin/env python3
"""Quickstart: one MPTCP transfer, two paths, energy metered.

Builds a two-path network, runs the paper's DTS algorithm against LIA on
the exact same transfer, and prints throughput, completion time and host
energy (Eq. 2) for both — the smallest end-to-end tour of the library.

Run:  python examples/quickstart.py
"""

from repro import Network, mb, mbps, ms
from repro.energy import ConnectionEnergyMeter, default_wired_host


def run_transfer(algorithm: str) -> None:
    net = Network(seed=42)
    client, server = net.add_host("client"), net.add_host("server")
    s1, s2 = net.add_switch("s1"), net.add_switch("s2")
    # Two disjoint 100 Mbps paths with different delays.
    net.link(client, s1, rate_bps=mbps(100), delay=ms(5))
    net.link(s1, server, rate_bps=mbps(100), delay=ms(5))
    net.link(client, s2, rate_bps=mbps(100), delay=ms(20))
    net.link(s2, server, rate_bps=mbps(100), delay=ms(20))

    conn = net.connection(
        [net.route([client, s1, server]), net.route([client, s2, server])],
        algorithm,
        total_bytes=mb(16),
    )
    meter = ConnectionEnergyMeter(net.sim, conn, default_wired_host(), n_subflows=2)
    conn.start()
    net.run_until_complete([conn])

    print(f"{algorithm:>4s}: "
          f"{conn.aggregate_goodput_bps() / 1e6:6.1f} Mbps aggregate, "
          f"done in {conn.completion_time:5.2f} s, "
          f"{meter.energy_j:6.1f} J host energy, "
          f"{conn.total_retransmissions()} retransmissions")


def main() -> None:
    print("16 MB transfer over two disjoint paths (5 ms and 20 ms):")
    for algorithm in ("lia", "dts"):
        run_transfer(algorithm)


if __name__ == "__main__":
    main()
