#!/usr/bin/env python3
"""Multimedia streaming over MPTCP — the paper's future-work scenario.

An application-limited 8 Mbps stream (think adaptive video) runs over the
WiFi+4G heterogeneous network for LIA, DTS and extended DTS. Because the
application caps the rate, the transport has slack to choose *which* path
carries the stream — the energy question in its purest form.

The run exposes a subtlety the bulk-transfer figures hide: DTS's
delay-based factor reacts to queue *inflation*, so after the WiFi path's
cross-traffic bursts it re-grows the WiFi window cautiously and the
app-limited stream spills onto the queue-stable but energy-expensive 4G
path. The phi energy price (extended DTS) counteracts this by taxing the
high-delay path directly — the Section V.C motivation, visible here
without any congestion pressure at all.

Run:  python examples/streaming_energy.py
"""

from repro.energy import ConnectionEnergyMeter
from repro.experiments.fig17_wireless import wireless_host_model
from repro.topology.wireless import build_wireless
from repro.units import mbps
from repro.workloads.streaming import attach_streaming_source


def run(algorithm: str, *, bitrate=mbps(8), duration: float = 40.0,
        seed: int = 1) -> None:
    kwargs = None
    if algorithm == "dts-ext":
        kwargs = {"kappa": 2e-3, "gamma": 0.3, "delay_cost_weight": 2.0,
                  "delay_cost_reference": 0.1}
    scenario = build_wireless(algorithm=algorithm, transfer_bytes=None,
                              seed=seed, rcv_buffer_bytes=None,
                              controller_kwargs=kwargs)
    conn = scenario.connection
    attach_streaming_source(conn, bitrate_bps=bitrate)
    meter = ConnectionEnergyMeter(
        scenario.network.sim, conn, wireless_host_model(), n_subflows=2
    )
    scenario.start_all()
    scenario.network.run(until=duration)

    wifi, cellular = conn.subflows
    mss_bits = wifi.mss * 8
    wifi_mbps = wifi.acked * mss_bits / duration / 1e6
    cell_mbps = cellular.acked * mss_bits / duration / 1e6
    delivered = (wifi.acked + cellular.acked) * mss_bits / duration / 1e6
    print(f"{algorithm:>4s}: stream {delivered:5.2f} Mbps "
          f"(wifi {wifi_mbps:5.2f} + 4g {cell_mbps:5.2f})  "
          f"power {meter.mean_power_w:5.2f} W  energy {meter.energy_j:6.1f} J")


def main() -> None:
    print("8 Mbps application-limited stream over WiFi+4G with cross traffic:")
    for algorithm in ("lia", "dts", "dts-ext"):
        run(algorithm)


if __name__ == "__main__":
    main()
