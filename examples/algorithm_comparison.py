#!/usr/bin/env python3
"""Compare every multipath algorithm on one shared-bottleneck scenario.

Two MPTCP-capable paths whose bottlenecks are also used by regular TCP
flows — the TCP-friendliness stress test. For each coupled algorithm we
report the MPTCP user's aggregate goodput, the competing TCP flows' mean
goodput (fairness), and the analytic Condition 1 verdict from the paper's
model (Section V.A).

Run:  python examples/algorithm_comparison.py
"""

import numpy as np

from repro.analysis.report import format_table
from repro.core import check_condition1, decompositions, solve_equilibrium
from repro.net import Network
from repro.units import mb, mbps, ms


def run_scenario(algorithm: str):
    net = Network(seed=7)
    client, server = net.add_host("c"), net.add_host("s")
    tcp_host = net.add_host("t")
    routes = []
    for i in range(2):
        sw_a, sw_b = net.add_switch(f"a{i}"), net.add_switch(f"b{i}")
        net.link(client, sw_a, rate_bps=mbps(500), delay=ms(1))
        net.link(tcp_host, sw_a, rate_bps=mbps(500), delay=ms(1))
        net.link(sw_a, sw_b, rate_bps=mbps(100), delay=ms(10))
        net.link(sw_b, server, rate_bps=mbps(500), delay=ms(1))
        routes.append(net.route([client, sw_a, sw_b, server]))
    mptcp = net.connection(routes, algorithm, total_bytes=mb(12), name="mptcp")
    tcp_flows = [
        net.tcp_connection(net.route(["t", f"a{i}", f"b{i}", "s"]),
                           total_bytes=mb(12), name=f"tcp{i}")
        for i in range(2)
    ]
    for conn in [mptcp, *tcp_flows]:
        conn.start(at=float(net.sim.rng.uniform(0, 0.05)))
    net.run_until_complete([mptcp, *tcp_flows], timeout=120)
    tcp_mean = sum(f.aggregate_goodput_bps() for f in tcp_flows) / len(tcp_flows)
    return mptcp.aggregate_goodput_bps(), tcp_mean


def condition1_verdict(name: str) -> str:
    table = decompositions()
    if name not in table:
        return "n/a"
    model = table[name]
    state = solve_equilibrium(
        model, rtt=np.array([0.022, 0.022]), loss=np.array([0.005, 0.005])
    ).state
    report = check_condition1(model, state)
    return "friendly" if report.satisfied else f"psi_h={report.psi_on_best_path:.2f}"


def main() -> None:
    rows = []
    for algorithm in ("lia", "olia", "balia", "ecmtcp", "wvegas", "ewtcp",
                      "coupled", "dts"):
        mptcp_bps, tcp_bps = run_scenario(algorithm)
        rows.append([
            algorithm,
            mptcp_bps / 1e6,
            tcp_bps / 1e6,
            mptcp_bps / tcp_bps,
            condition1_verdict(algorithm),
        ])
    print(format_table(
        ["algorithm", "mptcp (Mbps)", "tcp mean (Mbps)",
         "mptcp/tcp ratio", "condition 1"],
        rows,
    ))


if __name__ == "__main__":
    main()
