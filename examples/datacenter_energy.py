#!/usr/bin/env python3
"""Datacenter energy study: subflows vs energy overhead across topologies.

Reproduces the core of the paper's Figs. 12-14 story at example scale:
every host sends one long-lived LIA flow to a random peer on a FatTree, a
VL2 and a BCube fabric; we sweep the subflow count and report joules per
delivered gigabyte. BCube (server-centric) keeps improving with subflows;
the hierarchical fabrics do not.

Run:  python examples/datacenter_energy.py
"""

import numpy as np

from repro.analysis.report import format_grouped
from repro.fluidsim import FluidNetwork, FluidSimulation
from repro.topology import BCube, FatTree, Vl2
from repro.units import ms
from repro.workloads.permutation import random_permutation_pairs


def energy_per_gb(topology, n_subflows: int, *, duration: float = 20.0,
                  seed: int = 1) -> float:
    net = FluidNetwork(topology, path_seed=seed)
    pairs = random_permutation_pairs(topology.hosts, np.random.default_rng(seed))
    for src, dst in pairs:
        net.add_connection(src, dst, "lia", n_subflows=n_subflows)
    net.finalize()
    sim = FluidSimulation(net, dt=0.004, seed=seed)
    return sim.run(duration).energy_per_gb()


def main() -> None:
    factories = {
        "fattree(k=4)": lambda: FatTree(4, link_delay=ms(1)),
        "vl2(small)": lambda: Vl2(n_tor=8, hosts_per_tor=2, n_agg=4, n_int=4,
                                  link_delay=ms(1)),
        "bcube(4,2)": lambda: BCube(4, 2, link_delay=ms(1)),
    }
    series = {}
    for name, factory in factories.items():
        series[name] = {
            n: round(energy_per_gb(factory(), n)) for n in (1, 2, 4, 8)
        }
        print(f"done: {name}")
    print()
    print("energy overhead (J per delivered GB) vs subflow count:")
    print(format_grouped("subflows", series))


if __name__ == "__main__":
    main()
