#!/usr/bin/env python3
"""Heterogeneous wireless: a phone transmitting over WiFi + 4G.

Runs the paper's ns-2-style scenario (WiFi 10 Mbps/40 ms, 4G 20 Mbps/
100 ms, bursty cross traffic, 50-packet queues) for LIA and for the
paper's DTS, and prints per-path goodput, device power and total energy —
showing DTS shifting traffic off the expensive high-delay path.

Run:  python examples/wireless_energy.py
"""

from repro.energy import ConnectionEnergyMeter
from repro.experiments.fig17_wireless import wireless_host_model
from repro.topology.wireless import build_wireless


def run(algorithm: str, *, duration: float = 40.0, seed: int = 1) -> None:
    scenario = build_wireless(algorithm=algorithm, transfer_bytes=None, seed=seed)
    conn = scenario.connection
    meter = ConnectionEnergyMeter(
        scenario.network.sim, conn, wireless_host_model(), n_subflows=2
    )
    scenario.start_all()
    scenario.network.run(until=duration)

    wifi, cellular = conn.subflows
    mss_bits = wifi.mss * 8
    wifi_mbps = wifi.acked * mss_bits / duration / 1e6
    cell_mbps = cellular.acked * mss_bits / duration / 1e6
    print(f"{algorithm:>4s}: wifi {wifi_mbps:5.2f} Mbps  "
          f"4g {cell_mbps:5.2f} Mbps  "
          f"power {meter.mean_power_w:5.2f} W  "
          f"energy {meter.energy_j:6.1f} J  "
          f"retransmits {conn.total_retransmissions()}")


def main() -> None:
    print("40 s upload over WiFi (10 Mbps/40 ms) + 4G (20 Mbps/100 ms), "
          "bursty cross traffic:")
    for algorithm in ("lia", "dts"):
        run(algorithm)


if __name__ == "__main__":
    main()
